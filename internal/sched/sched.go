// Package sched contains the offloading decision engine: placement
// policies (the static baselines and the framework's deadline-aware
// cost-minimising policy), demand predictors, the per-application
// serverless function pool, and the online scheduler that moves each task
// through its uplink → execute → downlink lifecycle inside the simulation.
package sched

import (
	"fmt"
	"math"

	"offload/internal/cloudvm"
	"offload/internal/device"
	"offload/internal/edge"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/rng"
	"offload/internal/sim"
	"offload/internal/trace"
)

// Env bundles the substrates available to a scheduler. Device is
// mandatory; every remote substrate is optional but must come with its
// network path.
type Env struct {
	Eng    *sim.Engine
	Device *device.Device

	Edge     *edge.Cluster
	EdgePath *network.Path

	Functions *FunctionPool
	CloudPath *network.Path

	VM *cloudvm.Fleet
	// VMPath defaults to CloudPath when nil: VMs live in the same region.
	VMPath *network.Path

	// Remote, when non-nil, intercepts remote EXECUTION only: instead of
	// invoking the substrate executor on this engine, dispatchTo hands
	// (task, placement, predicted cycles, completion callback) to Remote.
	// The sharded fleet (core.ShardedFleet) uses this to run the network
	// transfer legs on the UE's shard engine while the substrate executes
	// on the hub engine across the conservative barrier. Reads — policy
	// decisions, queue lengths, estimates, Available — still go straight
	// at the substrate pointers above, which the sharded runtime keeps
	// quiescent while shard code runs.
	Remote RemoteBackends
}

// RemoteBackends executes one remote attempt on behalf of the scheduler.
// predictedCycles is the scheduler's demand estimate at dispatch time,
// captured on the shard so the hub-side function pool sizes instances
// exactly as the serial path would. done must eventually be invoked with
// the execution report; the implementation decides on which engine.
type RemoteBackends interface {
	Execute(task *model.Task, placement model.Placement, predictedCycles float64, done func(model.ExecReport))
}

// Validate reports whether the environment is coherent.
func (e *Env) Validate() error {
	switch {
	case e == nil || e.Eng == nil:
		return fmt.Errorf("sched: environment without engine")
	case e.Device == nil:
		return fmt.Errorf("sched: environment without device")
	case e.Edge != nil && e.EdgePath == nil:
		return fmt.Errorf("sched: edge cluster without edge path")
	case e.Functions != nil && e.CloudPath == nil:
		return fmt.Errorf("sched: serverless pool without cloud path")
	case e.VM != nil && e.VMPath == nil && e.CloudPath == nil:
		return fmt.Errorf("sched: VM fleet without any cloud path")
	}
	return nil
}

// vmPath returns the path used to reach the VM fleet.
func (e *Env) vmPath() *network.Path {
	if e.VMPath != nil {
		return e.VMPath
	}
	return e.CloudPath
}

// Available lists the placements this environment can serve.
func (e *Env) Available() []model.Placement {
	out := []model.Placement{model.PlaceLocal}
	if e.Edge != nil {
		out = append(out, model.PlaceEdge)
	}
	if e.Functions != nil {
		out = append(out, model.PlaceFunction)
	}
	if e.VM != nil {
		out = append(out, model.PlaceVM)
	}
	return out
}

// Scheduler drives tasks through the environment under one policy.
type Scheduler struct {
	env          *Env
	policy       Policy
	pred         Predictor
	stats        Stats
	onDone       func(model.Outcome)
	afterTask    map[model.TaskID]func(model.Outcome)
	retry        RetryPolicy
	src          *rng.Source // backoff jitter; nil disables jitter
	dvfsMinScale float64     // 0 disables per-task DVFS
	attempts     map[model.TaskID]int
	// sunk accumulates money and energy spent by failed attempts so the
	// final outcome reports the true total.
	sunkUSD map[model.TaskID]float64
	sunkMJ  map[model.TaskID]float64

	// Resilience layer (nil when disabled): per-task attempt state, one
	// circuit breaker per remote placement, and the latency histogram the
	// hedging delay quantile is computed from.
	res        *Resilience
	inflight   map[model.TaskID]*taskState
	breakers   map[model.Placement]*Breaker
	attemptLat *metrics.Histogram

	// Regional failover layer (nil when disabled): per-region health
	// tracking, re-homing and the graceful-degradation ladder.
	fo *failover

	// tr receives causal hook points (attempt lifecycle, breaker
	// transitions, hedge cancels, task settlement) when span tracing is
	// enabled. Tracers are passive: they record, never steer — dispatch
	// takes the same decisions with or without one.
	tr trace.Tracer
}

// RetryPolicy re-dispatches tasks that failed with a transient
// infrastructure error. MaxAttempts counts all tries (1 disables retries);
// Backoff delays each re-dispatch and doubles per attempt, capped at
// MaxBackoff (zero leaves it uncapped). With FullJitter the delay is drawn
// uniformly from [0, backoff) using the scheduler's rng stream, which
// decorrelates retry stampedes without losing determinism.
type RetryPolicy struct {
	MaxAttempts int
	Backoff     sim.Duration
	MaxBackoff  sim.Duration
	FullJitter  bool
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithOutcomeHook registers fn to receive every completed outcome, for
// tracing or custom aggregation.
func WithOutcomeHook(fn func(model.Outcome)) Option {
	return func(s *Scheduler) { s.onDone = fn }
}

// WithRetries enables transparent retries of transient failures.
func WithRetries(rp RetryPolicy) Option {
	return func(s *Scheduler) { s.retry = rp }
}

// WithRNG gives the scheduler its own random stream, used for retry
// backoff jitter. Without one, FullJitter is silently disabled.
func WithRNG(src *rng.Source) Option {
	return func(s *Scheduler) { s.src = src }
}

// WithResilience enables the client-side resilience layer: per-attempt
// timeouts, hedged requests, per-backend circuit breakers and fallback
// execution while a breaker is open. See Resilience.
func WithResilience(r Resilience) Option {
	return func(s *Scheduler) { s.res = &r }
}

// WithTracer attaches a span tracer to the scheduler. Equivalent to
// calling SetTracer before the first Submit.
func WithTracer(t trace.Tracer) Option {
	return func(s *Scheduler) { s.tr = t }
}

// SetTracer attaches (or detaches, with nil) the tracer receiving the
// scheduler's causal hook points. Call before the first Submit: attempts
// already in flight keep reporting to the tracer they started with.
func (s *Scheduler) SetTracer(t trace.Tracer) { s.tr = t }

// Tracer returns the attached tracer, or nil.
func (s *Scheduler) Tracer() trace.Tracer { return s.tr }

// WithLocalDVFS makes local executions of deadline-carrying tasks run at
// the slowest frequency that still meets the deadline (floored at
// minScale), instead of racing to idle at full speed. Delay-tolerant
// tasks without a deadline run at minScale. Energy scales with frequency,
// so this is the local-execution analogue of offloading's cost savings.
func WithLocalDVFS(minScale float64) Option {
	return func(s *Scheduler) { s.dvfsMinScale = minScale }
}

// New returns a scheduler. It errors on an incoherent environment or a
// policy that targets a substrate the environment lacks.
func New(env *Env, policy Policy, pred Predictor, opts ...Option) (*Scheduler, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("sched: nil policy")
	}
	if pred == nil {
		pred = Exact{}
	}
	s := &Scheduler{env: env, policy: policy, pred: pred,
		afterTask: make(map[model.TaskID]func(model.Outcome)),
		attempts:  make(map[model.TaskID]int),
		sunkUSD:   make(map[model.TaskID]float64),
		sunkMJ:    make(map[model.TaskID]float64)}
	s.stats.init()
	for _, o := range opts {
		o(s)
	}
	if s.res != nil {
		if err := s.res.Validate(); err != nil {
			return nil, err
		}
		s.inflight = make(map[model.TaskID]*taskState)
		s.breakers = make(map[model.Placement]*Breaker)
		s.attemptLat = metrics.NewLatencyHistogram()
	}
	if s.fo != nil {
		if err := s.initFailover(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Policy returns the scheduler's policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Env returns the environment the scheduler dispatches into. Callers that
// plan placements ahead of dispatch (the DAG rank placer) read substrate
// estimates through it; they must not mutate it.
func (s *Scheduler) Env() *Env { return s.env }

// Predictor returns the scheduler's demand predictor, so precedence-aware
// planners price nodes with the same estimates dispatch will use.
func (s *Scheduler) Predictor() Predictor { return s.pred }

// Stats returns the accumulated statistics.
func (s *Scheduler) Stats() *Stats { return &s.stats }

// InFlight returns tasks submitted but not yet settled. Zero when the
// resilience layer is disabled (plain dispatch tracks no task state).
func (s *Scheduler) InFlight() int { return len(s.inflight) }

// OpenBreakers returns how many per-backend circuit breakers are not in
// the Closed state right now (Open or HalfOpen), or 0 when the resilience
// layer is disabled.
func (s *Scheduler) OpenBreakers() int {
	n := 0
	for _, b := range s.breakers {
		if b.State() != BreakerClosed {
			n++
		}
	}
	return n
}

// BreakerOpens returns the total number of breaker trips across all
// backends so far.
func (s *Scheduler) BreakerOpens() uint64 {
	var n uint64
	for _, b := range s.breakers {
		n += b.Opens()
	}
	return n
}

// Submit routes one task according to the policy. The outcome lands in
// Stats (and the outcome hook) when the task's results are back on the
// device.
func (s *Scheduler) Submit(task *model.Task) {
	if err := task.Validate(); err != nil {
		s.finish(model.Outcome{Task: task, Started: s.env.Eng.Now(), Finished: s.env.Eng.Now(), Failed: true})
		return
	}
	task.Submitted = s.env.Eng.Now()
	placement := s.policy.Decide(task, s.env, s.pred)
	s.Dispatch(task, placement)
}

// SubmitThen routes the task per the policy and invokes then exactly once
// with its final outcome, after the global outcome hook. The serve path
// uses this to answer a caller waiting on one specific task. A task that
// fails validation settles immediately, so then still fires.
func (s *Scheduler) SubmitThen(task *model.Task, then func(model.Outcome)) {
	if then != nil {
		s.afterTask[task.ID] = then
	}
	s.Submit(task)
}

// ChainOutcomeHook appends fn behind the outcome hook already installed
// (if any): every settled task reaches both. Call before the first
// Submit; the serve layer chains its accounting hook after core's
// recorder this way without disturbing existing wiring.
func (s *Scheduler) ChainOutcomeHook(fn func(model.Outcome)) {
	if fn == nil {
		return
	}
	prev := s.onDone
	if prev == nil {
		s.onDone = fn
		return
	}
	s.onDone = func(o model.Outcome) {
		prev(o)
		fn(o)
	}
}

// Dispatch runs the task at an explicit placement, bypassing the policy.
// The Batcher uses this to realise its own placement decisions. With the
// resilience layer enabled the placement becomes the task's primary
// target, subject to breaker rerouting, hedging and retries. With the
// failover layer enabled the dispatch is first routed: a down region's
// tasks re-home, park or localize per the degradation ladder.
func (s *Scheduler) Dispatch(task *model.Task, placement model.Placement) {
	if s.fo != nil {
		s.fo.route(task, placement)
		return
	}
	s.dispatchDirect(task, placement)
}

// dispatchDirect is Dispatch past the failover routing decision: the
// resilience machinery, or one traced plain attempt.
func (s *Scheduler) dispatchDirect(task *model.Task, placement model.Placement) {
	if s.res != nil {
		s.resilientDispatch(task, placement)
		return
	}
	if s.tr == nil {
		s.dispatchTo(task, placement, s.finish)
		return
	}
	aid := s.tr.AttemptStart(task, placement, false, s.env.Eng.Now())
	s.dispatchTo(task, placement, func(o model.Outcome) {
		s.tr.AttemptEnd(aid, o, s.plainStatus(o), s.env.Eng.Now())
		s.finish(o)
	})
}

// plainStatus classifies a non-resilient attempt's ending the same way
// finish is about to: a failure either consumes a retry or is terminal.
func (s *Scheduler) plainStatus(o model.Outcome) string {
	switch {
	case !o.Failed:
		return trace.StatusWin
	case s.shouldRetry(o):
		return trace.StatusRetry
	default:
		return trace.StatusFailed
	}
}

// dispatchTo runs one attempt of the task at the placement and reports
// its outcome to done.
func (s *Scheduler) dispatchTo(task *model.Task, placement model.Placement, done func(model.Outcome)) {
	switch placement {
	case model.PlaceLocal:
		s.runLocal(task, done)
	case model.PlaceEdge:
		if s.env.Edge == nil {
			s.fail(task, placement, done)
			return
		}
		if s.env.Remote != nil {
			s.runRemoteShared(task, placement, s.env.EdgePath, done)
			return
		}
		s.runRemote(task, placement, s.env.Edge, s.env.EdgePath, done)
	case model.PlaceFunction:
		if s.env.Functions == nil {
			s.fail(task, placement, done)
			return
		}
		if s.env.Remote != nil {
			// Pool deploy/resize mutates shared state, so it happens on the
			// hub (inside Remote.Execute), not here on the shard.
			s.runRemoteShared(task, placement, s.env.CloudPath, done)
			return
		}
		fn, err := s.env.Functions.For(task, s.pred)
		if err != nil {
			s.fail(task, placement, done)
			return
		}
		s.runRemote(task, placement, fn, s.env.CloudPath, done)
	case model.PlaceVM:
		if s.env.VM == nil {
			s.fail(task, placement, done)
			return
		}
		if s.env.Remote != nil {
			s.runRemoteShared(task, placement, s.env.vmPath(), done)
			return
		}
		s.runRemote(task, placement, s.env.VM, s.env.vmPath(), done)
	default:
		s.fail(task, placement, done)
	}
}

// remoteExec adapts env.Remote to model.Executor for one attempt.
type remoteExec struct {
	s         *Scheduler
	placement model.Placement
	predicted float64
}

func (r remoteExec) Name() string               { return "remote:" + r.placement.String() }
func (r remoteExec) Placement() model.Placement { return r.placement }
func (r remoteExec) Execute(task *model.Task, done func(model.ExecReport)) {
	r.s.env.Remote.Execute(task, r.placement, r.predicted, done)
}

// runRemoteShared is runRemote with execution routed through env.Remote.
// The demand prediction is captured here, at dispatch time on the shard,
// so the hub sizes serverless instances with exactly the estimate the
// serial path would have used.
func (s *Scheduler) runRemoteShared(task *model.Task, placement model.Placement, path *network.Path, done func(model.Outcome)) {
	s.runRemote(task, placement, remoteExec{
		s: s, placement: placement, predicted: s.pred.PredictCycles(task),
	}, path, done)
}

func (s *Scheduler) fail(task *model.Task, placement model.Placement, done func(model.Outcome)) {
	now := s.env.Eng.Now()
	done(model.Outcome{
		Task: task, Placement: placement,
		Started: task.Submitted, Finished: now, Failed: true,
	})
}

func (s *Scheduler) runLocal(task *model.Task, done func(model.Outcome)) {
	start := task.Submitted
	dev := s.env.Device
	// Default to the device-wide DVFS setting; per-task DVFS overrides it.
	scale := dev.EffectiveHz() / dev.Config().CPUHz
	if s.dvfsMinScale > 0 {
		scale = s.dvfsScale(task)
	}
	// Energy at the chosen frequency: P ∝ f², t ∝ 1/f ⇒ E ∝ f.
	energy := dev.Config().ActivePowerW * scale * task.Cycles / dev.Config().CPUHz * 1000
	dev.ExecuteScaled(task, scale, func(rep model.ExecReport) {
		o := model.Outcome{
			Task:      task,
			Placement: model.PlaceLocal,
			Started:   start,
			Finished:  s.env.Eng.Now(),
			Exec:      rep,
			Failed:    rep.Err != nil,
		}
		if rep.Err == nil {
			o.EnergyMilliJ = energy
		}
		done(o)
	})
}

// dvfsScale picks the slowest frequency that still meets the task's
// deadline with a 20% safety margin; tasks without deadlines run at the
// floor.
func (s *Scheduler) dvfsScale(task *model.Task) float64 {
	minScale := s.dvfsMinScale
	if minScale > 1 {
		minScale = 1
	}
	if !task.HasDeadline() {
		return minScale
	}
	budget := float64(task.Deadline) * 0.8
	if budget <= 0 {
		return 1
	}
	needed := task.Cycles / (s.env.Device.Config().CPUHz * budget)
	switch {
	case needed >= 1:
		return 1
	case needed < minScale:
		return minScale
	default:
		return needed
	}
}

func (s *Scheduler) runRemote(task *model.Task, placement model.Placement, exec model.Executor, path *network.Path, done func(model.Outcome)) {
	start := task.Submitted
	var o model.Outcome
	o.Task = task
	o.Placement = placement
	o.Started = start
	path.Transfer(task.InputBytes, network.Uplink, func(up network.Report) {
		o.UplinkTime = up.Duration()
		o.EnergyMilliJ += s.env.Device.RadioEnergyMilliJ(up.Duration(), true)
		exec.Execute(task, func(rep model.ExecReport) {
			o.Exec = rep
			o.CostUSD += rep.CostUSD
			if rep.Err != nil {
				o.Failed = true
				o.Finished = s.env.Eng.Now()
				done(o)
				return
			}
			path.Transfer(task.OutputBytes, network.Downlink, func(down network.Report) {
				o.DownlinkTime = down.Duration()
				o.EnergyMilliJ += s.env.Device.RadioEnergyMilliJ(down.Duration(), false)
				o.Finished = s.env.Eng.Now()
				done(o)
			})
		})
	})
}

// DispatchThen runs the task at an explicit placement and invokes then
// once the outcome is recorded, in addition to the scheduler-wide hook.
func (s *Scheduler) DispatchThen(task *model.Task, placement model.Placement, then func(model.Outcome)) {
	if then != nil {
		s.afterTask[task.ID] = then
	}
	s.Dispatch(task, placement)
}

func (s *Scheduler) finish(o model.Outcome) {
	// Plain-path attempts report their outcome here once each, so this is
	// where the failover health tracker hears about them. The resilience
	// path feeds per attempt from onAttemptDone/onAttemptTimeout instead.
	if s.fo != nil && s.res == nil && o.Task != nil {
		s.fo.observe(o.Placement, o.Failed, o.Exec.Err, s.env.Eng.Now())
	}
	if o.Task != nil && o.Failed && s.res == nil && s.shouldRetry(o) {
		n := s.attempts[o.Task.ID] + 1
		s.attempts[o.Task.ID] = n
		s.sunkUSD[o.Task.ID] += o.CostUSD
		s.sunkMJ[o.Task.ID] += o.EnergyMilliJ
		s.stats.Retries++
		task, placement := o.Task, o.Placement
		s.env.Eng.After(s.retryDelay(n), func() { s.Dispatch(task, placement) })
		return
	}
	if o.Task != nil {
		o.Attempts = s.attempts[o.Task.ID] + 1
		o.CostUSD += s.sunkUSD[o.Task.ID]
		o.EnergyMilliJ += s.sunkMJ[o.Task.ID]
		delete(s.attempts, o.Task.ID)
		delete(s.sunkUSD, o.Task.ID)
		delete(s.sunkMJ, o.Task.ID)
	}
	if o.Task != nil && !o.Failed {
		s.pred.Observe(o.Task, o.Task.Cycles)
	}
	if fp, ok := s.policy.(FeedbackPolicy); ok {
		fp.ObserveOutcome(o, s.env)
	}
	s.stats.record(o)
	if s.tr != nil {
		s.tr.TaskDone(o, s.env.Eng.Now())
	}
	if s.onDone != nil {
		s.onDone(o)
	}
	if o.Task != nil {
		if cb, ok := s.afterTask[o.Task.ID]; ok {
			delete(s.afterTask, o.Task.ID)
			cb(o)
		}
	}
}

// shouldRetry reports whether the failed outcome is worth another try:
// a transient infrastructure error with attempts remaining.
func (s *Scheduler) shouldRetry(o model.Outcome) bool {
	return s.shouldRetryErr(o.Task, o.Exec.Err)
}

func (s *Scheduler) shouldRetryErr(task *model.Task, err error) bool {
	if s.retry.MaxAttempts <= 1 {
		return false
	}
	if !model.Transient(err) {
		return false
	}
	return s.attempts[task.ID]+1 < s.retry.MaxAttempts
}

// retryDelay returns the backoff before re-dispatching attempt n+1 (n
// failures so far): Backoff·2^(n-1), exponent capped so it cannot
// overflow, clamped to MaxBackoff, with optional full jitter.
func (s *Scheduler) retryDelay(n int) sim.Duration {
	shift := n - 1
	if shift > 30 {
		shift = 30
	}
	d := float64(s.retry.Backoff) * math.Ldexp(1, shift)
	if mb := float64(s.retry.MaxBackoff); mb > 0 && d > mb {
		d = mb
	}
	if s.retry.FullJitter && s.src != nil {
		d = s.src.Uniform(0, d)
	}
	return sim.Duration(d)
}
