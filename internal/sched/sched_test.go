package sched

import (
	"math"
	"testing"

	"offload/internal/cloudvm"
	"offload/internal/device"
	"offload/internal/edge"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// testEnv builds a full environment with deterministic (no-jitter, no
// cold-start-noise) substrates: a 1 GHz 2-core device, a 2-machine edge
// site over a fast LAN, a serverless platform over a slower WAN, and a VM.
func testEnv(t *testing.T) *Env {
	t.Helper()
	eng := sim.NewEngine()
	src := rng.New(42)

	dev := device.New(eng, device.Config{
		Name: "ue", CPUHz: 1e9, Cores: 2,
		ActivePowerW: 2, TxPowerW: 1.2, RxPowerW: 0.9,
	})

	edgeCluster := edge.New(eng, edge.Config{
		Name: "edge", Servers: 2, Cores: 4, CPUHz: 3e9,
		HourlyCostUSD: 0.6, MemoryPerServer: 32 * model.GB,
	})
	edgePath := network.New(eng, src.Split(), network.Config{
		Name: "lan", OneWayDelay: 0.002, UplinkBps: 200e6, DownlinkBps: 200e6,
	})

	platform := serverless.NewPlatform(eng, src.Split(), serverless.Config{
		Name:       "faas",
		MinMemory:  128 * model.MB,
		MaxMemory:  8192 * model.MB,
		MemoryStep: 64 * model.MB,
		BaselineHz: 2.5e9, FullShareBytes: 1769 * model.MB, MaxShare: 6,
		ColdStart:        serverless.ColdStartModel{MedianSec: 0.3, Sigma: 0},
		KeepAlive:        420,
		ConcurrencyLimit: 1000,
		Price: serverless.PriceTable{
			PerRequestUSD: 2e-7, PerGBSecondUSD: 1.6667e-5,
			Granularity: 0.001, MinBilled: 0.001,
		},
		PressureKneeRatio: 2, PressurePenalty: 1.5,
	})
	cloudPath := network.New(eng, src.Split(), network.Config{
		Name: "wan", OneWayDelay: 0.025, UplinkBps: 50e6, DownlinkBps: 100e6,
	})

	vm := cloudvm.New(eng, cloudvm.Config{
		Name: "vm", Cores: 2, CPUHz: 3e9, HourlyCostUSD: 0.085,
		MinInstances: 1, MaxInstances: 1,
	})

	return &Env{
		Eng:       eng,
		Device:    dev,
		Edge:      edgeCluster,
		EdgePath:  edgePath,
		Functions: NewFunctionPool(platform),
		CloudPath: cloudPath,
		VM:        vm,
	}
}

func heavyTask(id model.TaskID) *model.Task {
	return &model.Task{
		ID: id, App: "heavy",
		InputBytes: model.MB, OutputBytes: 256 * model.KB,
		Cycles: 20e9, MemoryBytes: 512 * model.MB,
		ParallelFraction: 0.5, Deadline: 600,
	}
}

func TestEnvValidate(t *testing.T) {
	env := testEnv(t)
	if err := env.Validate(); err != nil {
		t.Fatalf("full env invalid: %v", err)
	}
	var nilEnv *Env
	if err := nilEnv.Validate(); err == nil {
		t.Fatal("nil env validated")
	}
	broken := *env
	broken.EdgePath = nil
	if err := broken.Validate(); err == nil {
		t.Fatal("edge without path validated")
	}
	broken = *env
	broken.CloudPath = nil
	if err := broken.Validate(); err == nil {
		t.Fatal("functions without path validated")
	}
}

func TestAvailablePlacements(t *testing.T) {
	env := testEnv(t)
	if got := len(env.Available()); got != 4 {
		t.Fatalf("Available = %d placements, want 4", got)
	}
	minimal := &Env{Eng: env.Eng, Device: env.Device}
	if got := len(minimal.Available()); got != 1 {
		t.Fatalf("minimal Available = %d, want 1", got)
	}
}

func runOne(t *testing.T, env *Env, p Policy, task *model.Task) model.Outcome {
	t.Helper()
	var out model.Outcome
	s, err := New(env, p, Exact{}, WithOutcomeHook(func(o model.Outcome) { out = o }))
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(task)
	env.Eng.Run()
	return out
}

func TestLocalOnlyRunsLocal(t *testing.T) {
	env := testEnv(t)
	o := runOne(t, env, LocalOnly{}, heavyTask(1))
	if o.Placement != model.PlaceLocal || o.Failed {
		t.Fatalf("outcome: %+v", o)
	}
	// 20e9 cycles at 1 GHz = 20 s.
	if math.Abs(float64(o.CompletionTime())-20) > 1e-9 {
		t.Fatalf("local completion = %v, want 20", o.CompletionTime())
	}
	if o.CostUSD != 0 {
		t.Fatal("local execution cost money")
	}
	if o.EnergyMilliJ != 40000 { // 20 s × 2 W
		t.Fatalf("local energy = %g mJ, want 40000", o.EnergyMilliJ)
	}
}

func TestEdgeAllUsesEdgeAndPaysRadioEnergy(t *testing.T) {
	env := testEnv(t)
	o := runOne(t, env, EdgeAll{}, heavyTask(2))
	if o.Placement != model.PlaceEdge || o.Failed {
		t.Fatalf("outcome: %+v", o)
	}
	// Exec: 20e9/3e9 ≈ 6.67 s, plus small transfers.
	if got := float64(o.CompletionTime()); got < 6.6 || got > 7.5 {
		t.Fatalf("edge completion = %v", got)
	}
	if o.EnergyMilliJ <= 0 || o.EnergyMilliJ > 1000 {
		t.Fatalf("edge radio energy = %g mJ", o.EnergyMilliJ)
	}
	if env.Edge.Executed() != 1 {
		t.Fatal("edge did not execute the task")
	}
}

func TestCloudAllDeploysSizedFunctionAndBills(t *testing.T) {
	env := testEnv(t)
	o := runOne(t, env, CloudAll{}, heavyTask(3))
	if o.Placement != model.PlaceFunction || o.Failed {
		t.Fatalf("outcome: %+v", o)
	}
	if o.CostUSD <= 0 {
		t.Fatal("serverless execution billed nothing")
	}
	if o.Exec.ColdStart == 0 {
		t.Fatal("first invocation did not pay a cold start")
	}
	sized := env.Functions.Sized("heavy")
	if sized < 512*model.MB {
		t.Fatalf("function sized below working set: %d", sized)
	}
	if env.Functions.Platform().Stats().Invocations != 1 {
		t.Fatal("platform did not record the invocation")
	}
}

func TestVMAllUsesFleet(t *testing.T) {
	env := testEnv(t)
	o := runOne(t, env, VMAll{}, heavyTask(4))
	if o.Placement != model.PlaceVM || o.Failed {
		t.Fatalf("outcome: %+v", o)
	}
	if o.Exec.ColdStart != 0 {
		t.Fatal("VM reported a cold start")
	}
	if env.VM.Executed() != 1 {
		t.Fatal("fleet did not execute")
	}
}

func TestRandomCoversAllPlacements(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, &Random{Src: rng.New(7)}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		task := heavyTask(model.TaskID(10 + i))
		task.Cycles = 1e8 // keep the run short
		s.Submit(task)
		env.Eng.Run()
	}
	st := s.Stats()
	if len(st.ByPlacement) < 3 {
		t.Fatalf("random policy used only %d placements: %v", len(st.ByPlacement), st.ByPlacement)
	}
	if st.Completed != 40 {
		t.Fatalf("Completed = %d", st.Completed)
	}
}

func TestThresholdPolicySplitsByDemand(t *testing.T) {
	env := testEnv(t)
	pol := &Threshold{Cycles: 5e9}
	small := heavyTask(1)
	small.Cycles = 1e9
	if got := pol.Decide(small, env, Exact{}); got != model.PlaceLocal {
		t.Fatalf("small task placed at %v", got)
	}
	big := heavyTask(2)
	big.Cycles = 50e9
	if got := pol.Decide(big, env, Exact{}); got != model.PlaceFunction {
		t.Fatalf("big task placed at %v", got)
	}
	// Without serverless it degrades to local.
	env.Functions = nil
	if got := pol.Decide(big, env, Exact{}); got != model.PlaceLocal {
		t.Fatalf("big task without serverless placed at %v", got)
	}
}

func TestThresholdPolicyUsesPrediction(t *testing.T) {
	env := testEnv(t)
	pol := &Threshold{Cycles: 5e9}
	task := heavyTask(3)
	task.Cycles = 50e9 // truly big...
	pred := NewPerApp(1.0)
	pred.Observe(task, 1e8) // ...but predicted tiny
	if got := pol.Decide(task, env, pred); got != model.PlaceLocal {
		t.Fatalf("threshold ignored the predictor: %v", got)
	}
}

func TestDeadlineAwareAvoidsLocalForHeavyWork(t *testing.T) {
	env := testEnv(t)
	// 200 s of local work against a 600 s deadline: local is feasible but
	// burns ~400 J; remote placements cost micro-dollars. The policy must
	// offload.
	task := heavyTask(5)
	task.Cycles = 200e9
	o := runOne(t, env, NewDeadlineAware(), task)
	if o.Failed {
		t.Fatalf("outcome failed: %+v", o)
	}
	if o.Placement == model.PlaceLocal {
		t.Fatal("deadline-aware kept heavy work local")
	}
	if o.MissedDeadline() {
		t.Fatalf("missed deadline: completion %v", o.CompletionTime())
	}
}

func TestDeadlineAwareKeepsDataHeavyWorkLocal(t *testing.T) {
	env := testEnv(t)
	// 1 GB up for 0.1 s of compute: radio time and energy dwarf the local
	// cost, so local must win.
	task := &model.Task{
		ID: 6, App: "datah", InputBytes: model.GB, OutputBytes: model.GB,
		Cycles: 1e8, Deadline: 3600,
	}
	o := runOne(t, env, NewDeadlineAware(), task)
	if o.Placement != model.PlaceLocal {
		t.Fatalf("data-heavy task placed at %v", o.Placement)
	}
}

func TestDeadlineAwareAvoidsDeadDevice(t *testing.T) {
	env := testEnv(t)
	// Drain the battery-free test device? It is mains powered, so instead
	// build a drained battery device.
	eng := env.Eng
	dead := device.New(eng, device.Config{
		Name: "dying", CPUHz: 1e9, Cores: 1,
		ActivePowerW: 2, TxPowerW: 1, RxPowerW: 1, BatteryJ: 0.001,
	})
	dead.RadioEnergyMilliJ(1, true) // drains past capacity
	if !dead.Dead() {
		t.Fatal("setup: device not dead")
	}
	env.Device = dead
	task := heavyTask(7)
	o := runOne(t, env, NewDeadlineAware(), task)
	if o.Placement == model.PlaceLocal {
		t.Fatal("policy placed work on a dead device")
	}
}

func TestDeadlineAwareTightDeadlinePrefersFastPlacement(t *testing.T) {
	env := testEnv(t)
	// 20 s of local work with an 8 s deadline: only edge/cloud/VM (≥3 GHz)
	// can make it.
	task := heavyTask(8)
	task.Deadline = 8
	o := runOne(t, env, NewDeadlineAware(), task)
	if o.Placement == model.PlaceLocal {
		t.Fatal("local cannot meet an 8 s deadline for 20 s of work")
	}
	if o.MissedDeadline() {
		t.Fatalf("missed tight deadline: %v", o.CompletionTime())
	}
}

func TestSchedulerStatsAggregation(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, CloudAll{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		task := heavyTask(model.TaskID(100 + i))
		task.Cycles = 2e9
		s.Submit(task)
		env.Eng.Run()
	}
	st := s.Stats()
	if st.Completed != 5 || st.Failed != 0 {
		t.Fatalf("Completed/Failed = %d/%d", st.Completed, st.Failed)
	}
	if st.CostUSD <= 0 || st.CostPerTask() <= 0 {
		t.Fatal("no cost recorded")
	}
	if st.EnergyPerTaskMilliJ() <= 0 {
		t.Fatal("no energy recorded")
	}
	if st.ByPlacement[model.PlaceFunction] != 5 {
		t.Fatalf("ByPlacement = %v", st.ByPlacement)
	}
	if st.MeanCompletion() <= 0 || st.P95Completion() < st.MeanCompletion() {
		t.Fatalf("completion stats: mean %g p95 %g", st.MeanCompletion(), st.P95Completion())
	}
}

func TestInvalidTaskFails(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, LocalOnly{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(&model.Task{ID: 1, Cycles: -5})
	env.Eng.Run()
	if s.Stats().Failed != 1 {
		t.Fatal("invalid task not recorded as failure")
	}
}

func TestDispatchToMissingSubstrateFails(t *testing.T) {
	env := testEnv(t)
	env.Edge, env.EdgePath = nil, nil
	s, err := New(env, LocalOnly{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	s.Dispatch(heavyTask(9), model.PlaceEdge)
	env.Eng.Run()
	if s.Stats().Failed != 1 {
		t.Fatal("dispatch to missing edge did not fail")
	}
}

func TestWarmReuseAcrossTasks(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, CloudAll{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	colds := 0
	s.onDone = func(o model.Outcome) {
		if o.Exec.ColdStart > 0 {
			colds++
		}
	}
	// Submissions 5 s apart, well inside the 420 s keep-alive, inside one
	// simulation run so warm containers survive between tasks.
	for i := 0; i < 4; i++ {
		task := heavyTask(model.TaskID(200 + i))
		task.Cycles = 1e9
		env.Eng.At(sim.Time(i*5), func() { s.Submit(task) })
	}
	env.Eng.Run()
	if colds != 1 {
		t.Fatalf("cold starts = %d, want 1 (warm reuse)", colds)
	}
}

func TestPerAppPredictorLearns(t *testing.T) {
	p := NewPerApp(0.5)
	task := &model.Task{App: "x", Cycles: 42}
	// Before any observation, falls back to the task's own demand.
	if got := p.PredictCycles(task); got != 42 {
		t.Fatalf("cold prediction = %g", got)
	}
	for i := 0; i < 20; i++ {
		p.Observe(task, 100)
	}
	if got := p.PredictCycles(&model.Task{App: "x", Cycles: 1}); math.Abs(got-100) > 1 {
		t.Fatalf("learned prediction = %g, want ~100", got)
	}
	// Different app: unaffected.
	if got := p.PredictCycles(&model.Task{App: "y", Cycles: 7}); got != 7 {
		t.Fatalf("cross-app prediction = %g", got)
	}
}

func TestNoisyPredictorPerturbsButDelegatesObserve(t *testing.T) {
	inner := NewPerApp(0.5)
	n := NewNoisy(inner, rng.New(3), 0.3)
	task := &model.Task{App: "z", Cycles: 1e9}
	diff := false
	for i := 0; i < 20; i++ {
		if n.PredictCycles(task) != 1e9 {
			diff = true
		}
	}
	if !diff {
		t.Fatal("noisy predictor never perturbed")
	}
	n.Observe(task, 5e8)
	if inner.PredictCycles(&model.Task{App: "z"}) != 5e8 {
		t.Fatal("Observe not delegated to inner predictor")
	}
}

func TestFunctionPoolRedeploysOnDrift(t *testing.T) {
	env := testEnv(t)
	pool := env.Functions
	pool.RedeployTolerance = 0.5
	task := heavyTask(300)
	if _, err := pool.For(task, Exact{}); err != nil {
		t.Fatal(err)
	}
	memBefore := pool.Sized("heavy")
	grown := *task
	grown.Cycles = task.Cycles * 10
	grown.ParallelFraction = 0.95
	if _, err := pool.For(&grown, Exact{}); err != nil {
		t.Fatal(err)
	}
	if pool.Redeploys() != 1 {
		t.Fatalf("Redeploys = %d, want 1", pool.Redeploys())
	}
	// Small drift relative to the latest sizing: no redeploy.
	slight := grown
	slight.Cycles = grown.Cycles * 1.1
	if _, err := pool.For(&slight, Exact{}); err != nil {
		t.Fatal(err)
	}
	if pool.Redeploys() != 1 {
		t.Fatalf("Redeploys = %d after small drift, want 1", pool.Redeploys())
	}
	_ = memBefore
}

func TestBatcherAmortisesColdStarts(t *testing.T) {
	// Two identical environments, one batched, one not; sequential task
	// streams far apart so every unbatched invocation is cold.
	run := func(batch bool) (colds uint64, cost float64) {
		env := testEnv(t)
		// Short keep-alive: gaps between arrivals exceed it.
		cfg := env.Functions.Platform().Config()
		_ = cfg
		s, err := New(env, CloudAll{}, Exact{})
		if err != nil {
			t.Fatal(err)
		}
		var b *Batcher
		if batch {
			b, err = NewBatcher(s, 4, 0)
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			task := heavyTask(model.TaskID(400 + i))
			task.Cycles = 1e9
			at := sim.Time(i) * 1000 // 1000 s apart ≫ 420 s keep-alive
			env.Eng.At(at, func() {
				if batch {
					b.Submit(task)
				} else {
					s.Submit(task)
				}
			})
		}
		if batch {
			env.Eng.At(3500, func() { b.Flush() })
		}
		env.Eng.Run()
		return env.Functions.Platform().Stats().ColdStarts, s.Stats().CostUSD
	}
	coldsUnbatched, _ := run(false)
	coldsBatched, _ := run(true)
	if coldsUnbatched != 4 {
		t.Fatalf("unbatched cold starts = %d, want 4", coldsUnbatched)
	}
	if coldsBatched != 1 {
		t.Fatalf("batched cold starts = %d, want 1", coldsBatched)
	}
}

func TestBatcherFlushOnSize(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, CloudAll{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(s, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		task := heavyTask(model.TaskID(500 + i))
		task.Cycles = 1e9
		b.Submit(task)
	}
	env.Eng.Run()
	if b.Flushes() != 1 || b.Pending() != 0 {
		t.Fatalf("Flushes=%d Pending=%d", b.Flushes(), b.Pending())
	}
	if s.Stats().Completed != 3 {
		t.Fatalf("Completed = %d", s.Stats().Completed)
	}
}

func TestBatcherFlushOnTimer(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, CloudAll{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(s, 100, 50) // huge size, 50 s max wait
	if err != nil {
		t.Fatal(err)
	}
	task := heavyTask(600)
	task.Cycles = 1e9
	b.Submit(task)
	env.Eng.Run()
	if s.Stats().Completed != 1 {
		t.Fatal("timer flush did not dispatch")
	}
	if env.Eng.Now() < 50 {
		t.Fatalf("flush happened before MaxWait: %v", env.Eng.Now())
	}
}

func TestBatcherNonServerlessBypasses(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, LocalOnly{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(s, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	task := heavyTask(700)
	task.Cycles = 1e9
	b.Submit(task)
	env.Eng.Run()
	if s.Stats().Completed != 1 {
		t.Fatal("bypass task not completed")
	}
	if b.Batched() != 0 {
		t.Fatal("local task counted as batched")
	}
}

func TestBatcherValidation(t *testing.T) {
	env := testEnv(t)
	s, _ := New(env, CloudAll{}, Exact{})
	if _, err := NewBatcher(nil, 1, 0); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := NewBatcher(s, 0, 0); err == nil {
		t.Fatal("zero batch size accepted")
	}
	if _, err := NewBatcher(s, 1, -1); err == nil {
		t.Fatal("negative wait accepted")
	}
}
