package sched

import (
	"fmt"

	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/sim"
)

// OffPeakShifter exploits delay tolerance against a diurnal price
// schedule: serverless-bound tasks with enough deadline slack are held
// until the platform's off-peak discount window opens. Tasks the policy
// sends elsewhere, tasks without slack, and platforms without a schedule
// dispatch immediately.
//
// This is the purest expression of the paper's thesis — a task that does
// not care *when* it completes should run when computation is cheapest.
type OffPeakShifter struct {
	sched *Scheduler

	// SafetyFactor derates the remaining slack when deciding whether the
	// task can afford to wait (default 0.8).
	SafetyFactor float64

	shifted   uint64
	immediate uint64
}

// NewOffPeakShifter wraps a scheduler. The environment must have a
// serverless pool.
func NewOffPeakShifter(s *Scheduler) (*OffPeakShifter, error) {
	if s == nil {
		return nil, fmt.Errorf("sched: shifter over nil scheduler")
	}
	if s.env.Functions == nil {
		return nil, fmt.Errorf("sched: shifter without a serverless pool")
	}
	return &OffPeakShifter{sched: s, SafetyFactor: 0.8}, nil
}

// Submit routes the task, delaying it when waiting for the discount
// window is affordable.
func (o *OffPeakShifter) Submit(task *model.Task) {
	env := o.sched.env
	now := env.Eng.Now()
	task.Submitted = now
	placement := o.sched.policy.Decide(task, env, o.sched.pred)
	if placement != model.PlaceFunction {
		o.immediate++
		o.sched.Dispatch(task, placement)
		return
	}
	price := env.Functions.Platform().Config().Price
	if !price.HasOffPeak() || price.InOffPeak(now) {
		o.immediate++
		o.sched.Dispatch(task, placement)
		return
	}
	start := price.NextOffPeakStart(now)
	wait := start.Sub(now)
	if !o.affordable(task, wait) {
		o.immediate++
		o.sched.Dispatch(task, placement)
		return
	}
	o.shifted++
	env.Eng.At(start, func() {
		o.sched.Dispatch(task, model.PlaceFunction)
	})
}

// affordable reports whether waiting still leaves room to finish within
// the task's deadline.
func (o *OffPeakShifter) affordable(task *model.Task, wait sim.Duration) bool {
	if !task.HasDeadline() {
		return true // fully delay tolerant
	}
	env := o.sched.env
	cycles := o.sched.pred.PredictCycles(task)
	dec, err := env.Functions.EstimateFor(task, cycles)
	if err != nil {
		return false
	}
	up := env.CloudPath.EstimateTransfer(task.InputBytes, network.Uplink)
	down := env.CloudPath.EstimateTransfer(task.OutputBytes, network.Downlink)
	needed := float64(wait) + float64(up) + float64(dec.ExpectedTime) + float64(down)
	return needed <= float64(task.Deadline)*o.SafetyFactor
}

// Shifted returns how many tasks were delayed into the discount window.
func (o *OffPeakShifter) Shifted() uint64 { return o.shifted }

// Immediate returns how many tasks dispatched without waiting.
func (o *OffPeakShifter) Immediate() uint64 { return o.immediate }
