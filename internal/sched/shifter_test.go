package sched

import (
	"testing"

	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// offPeakEnv builds a serverless-only environment whose platform carries a
// 22:00–06:00 discount window.
func offPeakEnv(t *testing.T) *Env {
	t.Helper()
	env := testEnv(t)
	env.Edge, env.EdgePath, env.VM = nil, nil, nil
	cfg := env.Functions.Platform().Config()
	cfg.Price.OffPeakFactor = 0.4
	cfg.Price.OffPeakStartHour = 22
	cfg.Price.OffPeakEndHour = 6
	cfg.ColdStart = serverless.ColdStartModel{}
	platform := serverless.NewPlatform(env.Eng, rng.New(5), cfg)
	env.Functions = NewFunctionPool(platform)
	return env
}

func TestShifterRequiresServerless(t *testing.T) {
	env := testEnv(t)
	env.Functions, env.CloudPath = nil, nil
	env.Edge, env.EdgePath, env.VM = nil, nil, nil
	s, err := New(env, LocalOnly{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOffPeakShifter(s); err == nil {
		t.Fatal("shifter without serverless accepted")
	}
	if _, err := NewOffPeakShifter(nil); err == nil {
		t.Fatal("shifter over nil scheduler accepted")
	}
}

func TestShifterDelaysSlackRichTask(t *testing.T) {
	env := offPeakEnv(t)
	s, err := New(env, CloudAll{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewOffPeakShifter(s)
	if err != nil {
		t.Fatal(err)
	}
	var out model.Outcome
	s.onDone = func(o model.Outcome) { out = o }
	// Submitted at 20:00 with an 8-hour deadline: can afford the 2 h wait.
	task := heavyTask(1)
	task.Cycles = 2e9
	task.Deadline = 8 * 3600
	env.Eng.At(sim.Time(20*3600), func() { sh.Submit(task) })
	env.Eng.Run()
	if sh.Shifted() != 1 {
		t.Fatalf("Shifted = %d", sh.Shifted())
	}
	// Execution started inside the window (22:00 = 79200 s).
	if out.Exec.Start < sim.Time(22*3600) {
		t.Fatalf("execution started at %v, before the window", out.Exec.Start)
	}
	if out.MissedDeadline() {
		t.Fatal("shifted task missed its deadline")
	}
}

func TestShifterDispatchesTightDeadlineImmediately(t *testing.T) {
	env := offPeakEnv(t)
	s, err := New(env, CloudAll{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewOffPeakShifter(s)
	if err != nil {
		t.Fatal(err)
	}
	var out model.Outcome
	s.onDone = func(o model.Outcome) { out = o }
	// 10-minute deadline at 20:00: cannot wait for 22:00.
	task := heavyTask(2)
	task.Cycles = 2e9
	task.Deadline = 600
	env.Eng.At(sim.Time(20*3600), func() { sh.Submit(task) })
	env.Eng.Run()
	if sh.Shifted() != 0 || sh.Immediate() != 1 {
		t.Fatalf("Shifted/Immediate = %d/%d", sh.Shifted(), sh.Immediate())
	}
	if out.MissedDeadline() {
		t.Fatal("immediate dispatch missed the deadline")
	}
}

func TestShifterNoDeadlineAlwaysWaits(t *testing.T) {
	env := offPeakEnv(t)
	s, err := New(env, CloudAll{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewOffPeakShifter(s)
	if err != nil {
		t.Fatal(err)
	}
	task := heavyTask(3)
	task.Cycles = 2e9
	task.Deadline = 0 // fully delay tolerant
	env.Eng.At(sim.Time(12*3600), func() { sh.Submit(task) })
	env.Eng.Run()
	if sh.Shifted() != 1 {
		t.Fatalf("delay-tolerant task not shifted: %d", sh.Shifted())
	}
}

func TestShifterInsideWindowDispatchesNow(t *testing.T) {
	env := offPeakEnv(t)
	s, err := New(env, CloudAll{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewOffPeakShifter(s)
	if err != nil {
		t.Fatal(err)
	}
	task := heavyTask(4)
	task.Cycles = 2e9
	env.Eng.At(sim.Time(23*3600), func() { sh.Submit(task) })
	env.Eng.Run()
	if sh.Immediate() != 1 || sh.Shifted() != 0 {
		t.Fatalf("in-window submission shifted: %d/%d", sh.Shifted(), sh.Immediate())
	}
}

func TestShifterWithoutScheduleDispatchesNow(t *testing.T) {
	env := testEnv(t) // LambdaLike: no off-peak schedule
	env.Edge, env.EdgePath, env.VM = nil, nil, nil
	s, err := New(env, CloudAll{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewOffPeakShifter(s)
	if err != nil {
		t.Fatal(err)
	}
	task := heavyTask(5)
	task.Cycles = 2e9
	sh.Submit(task)
	env.Eng.Run()
	if sh.Immediate() != 1 {
		t.Fatal("no-schedule platform still shifted")
	}
}

func TestShifterNonServerlessPlacementBypasses(t *testing.T) {
	env := offPeakEnv(t)
	s, err := New(env, LocalOnly{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewOffPeakShifter(s)
	if err != nil {
		t.Fatal(err)
	}
	task := heavyTask(6)
	task.Cycles = 2e9
	env.Eng.At(sim.Time(12*3600), func() { sh.Submit(task) })
	env.Eng.Run()
	if sh.Immediate() != 1 || sh.Shifted() != 0 {
		t.Fatal("local placement went through the shifter queue")
	}
	if s.Stats().ByPlacement[model.PlaceLocal] != 1 {
		t.Fatal("task did not run locally")
	}
}
