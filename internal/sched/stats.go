package sched

import (
	"offload/internal/metrics"
	"offload/internal/model"
)

// Stats aggregates outcomes for one scheduler run: completion-time
// distribution, money, energy, deadline misses and a per-placement
// breakdown. The benchmark harness reads these to print its tables.
type Stats struct {
	Completion *metrics.Histogram
	Uplink     metrics.Summary
	Downlink   metrics.Summary

	Completed uint64
	Failed    uint64
	Missed    uint64 // completed but past deadline
	Retries   uint64 // re-dispatches after transient failures
	Timeouts  uint64 // attempts abandoned by the per-attempt timeout
	Hedges    uint64 // duplicate attempts launched by hedging
	HedgeWins uint64 // hedge attempts that finished first
	Fallbacks uint64 // attempts rerouted while a breaker was open

	CostUSD      float64 // spend attributed to completed tasks
	EnergyMilliJ float64 // device energy attributed to completed tasks

	// Failed tasks still burn money and battery: every attempt the platform
	// billed before the task was abandoned (sunk retries, timed-out
	// attempts, the final failing attempt) lands here instead of vanishing.
	// CostUSD + FailedCostUSD equals what the platforms actually billed.
	FailedCostUSD      float64
	FailedEnergyMilliJ float64

	ByPlacement map[model.Placement]uint64
}

func (s *Stats) init() {
	s.Completion = metrics.NewLatencyHistogram()
	s.ByPlacement = make(map[model.Placement]uint64)
}

func (s *Stats) record(o model.Outcome) {
	if o.Failed {
		s.Failed++
		s.FailedCostUSD += o.CostUSD
		s.FailedEnergyMilliJ += o.EnergyMilliJ
		return
	}
	s.Completed++
	s.Completion.Observe(float64(o.CompletionTime()))
	s.Uplink.Observe(float64(o.UplinkTime))
	s.Downlink.Observe(float64(o.DownlinkTime))
	s.CostUSD += o.CostUSD
	s.EnergyMilliJ += o.EnergyMilliJ
	s.ByPlacement[o.Placement]++
	if o.MissedDeadline() {
		s.Missed++
	}
}

// Total returns completed + failed task count.
func (s *Stats) Total() uint64 { return s.Completed + s.Failed }

// MissRate returns the fraction of completed tasks that missed their
// deadline, or 0 if nothing completed.
func (s *Stats) MissRate() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.Missed) / float64(s.Completed)
}

// MeanCompletion returns the mean completion time in seconds.
func (s *Stats) MeanCompletion() float64 { return s.Completion.Mean() }

// P95Completion returns the 95th-percentile completion time in seconds.
func (s *Stats) P95Completion() float64 { return s.Completion.Quantile(0.95) }

// TotalCostUSD returns all money spent, whether the task completed or
// not. This matches the platforms' billing, which charges per attempt.
func (s *Stats) TotalCostUSD() float64 { return s.CostUSD + s.FailedCostUSD }

// TotalEnergyMilliJ returns all device energy drained, whether the task
// completed or not.
func (s *Stats) TotalEnergyMilliJ() float64 { return s.EnergyMilliJ + s.FailedEnergyMilliJ }

// CostPerTask returns mean dollars per completed task, or 0 if none
// completed. The numerator includes money sunk into failed tasks — the
// real price of a successful result under failures, matching platform
// billing rather than understating it.
func (s *Stats) CostPerTask() float64 {
	if s.Completed == 0 {
		return 0
	}
	return s.TotalCostUSD() / float64(s.Completed)
}

// EnergyPerTaskMilliJ returns mean device energy per completed task,
// including energy drained by failed tasks (see CostPerTask).
func (s *Stats) EnergyPerTaskMilliJ() float64 {
	if s.Completed == 0 {
		return 0
	}
	return s.TotalEnergyMilliJ() / float64(s.Completed)
}
