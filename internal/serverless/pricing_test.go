package serverless

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/sim"
)

func offPeakPrice() PriceTable {
	return PriceTable{
		PerGBSecondUSD:   1e-5,
		Granularity:      0.001,
		MinBilled:        0.001,
		OffPeakFactor:    0.4,
		OffPeakStartHour: 22,
		OffPeakEndHour:   6,
	}
}

func TestInOffPeakWrapsMidnight(t *testing.T) {
	p := offPeakPrice()
	tests := []struct {
		hour float64
		want bool
	}{
		{23, true}, {0, true}, {5.9, true},
		{6, false}, {12, false}, {21.9, false}, {22, true},
	}
	for _, tt := range tests {
		at := sim.Time(tt.hour * 3600)
		if got := p.InOffPeak(at); got != tt.want {
			t.Errorf("InOffPeak(hour %g) = %v, want %v", tt.hour, got, tt.want)
		}
	}
	// Second day behaves identically.
	if !p.InOffPeak(sim.Time(24*3600 + 2*3600)) {
		t.Error("02:00 on day 2 not off-peak")
	}
}

func TestInOffPeakNonWrappingWindow(t *testing.T) {
	p := offPeakPrice()
	p.OffPeakStartHour, p.OffPeakEndHour = 2, 8
	if !p.InOffPeak(sim.Time(3 * 3600)) {
		t.Error("03:00 not in [2, 8)")
	}
	if p.InOffPeak(sim.Time(9 * 3600)) {
		t.Error("09:00 in [2, 8)")
	}
}

func TestNextOffPeakStart(t *testing.T) {
	p := offPeakPrice()
	// At 10:00, next window opens 22:00 the same day (within the
	// deliberate few-millisecond safety nudge).
	got := p.NextOffPeakStart(sim.Time(10 * 3600))
	if math.Abs(float64(got)-22*3600) > 0.01 {
		t.Fatalf("NextOffPeakStart(10:00) = %v, want ~22:00", got)
	}
	if !p.InOffPeak(got) {
		t.Fatal("NextOffPeakStart result not inside the window")
	}
	// Already inside: unchanged.
	at := sim.Time(23 * 3600)
	if p.NextOffPeakStart(at) != at {
		t.Fatal("NextOffPeakStart inside window moved")
	}
	// No schedule: unchanged.
	flat := PriceTable{PerGBSecondUSD: 1, Granularity: 0.001}
	if flat.NextOffPeakStart(at) != at {
		t.Fatal("NextOffPeakStart without schedule moved")
	}
}

func TestNextOffPeakStartAlwaysLandsInWindow(t *testing.T) {
	p := offPeakPrice()
	f := func(minutes uint32) bool {
		at := sim.Time(minutes) * 60
		return p.InOffPeak(p.NextOffPeakStart(at))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBillAtAppliesDiscount(t *testing.T) {
	p := offPeakPrice()
	peak := p.BillAt(model.GB, 1, sim.Time(12*3600))
	off := p.BillAt(model.GB, 1, sim.Time(23*3600))
	if math.Abs(off/peak-0.4) > 1e-9 {
		t.Fatalf("off-peak/peak = %g, want 0.4", off/peak)
	}
	if math.Abs(p.Bill(model.GB, 1)-peak) > 1e-12 {
		t.Fatal("Bill should be the peak rate")
	}
}

func TestOffPeakValidation(t *testing.T) {
	bad := []func(*PriceTable){
		func(p *PriceTable) { p.OffPeakFactor = -0.1 },
		func(p *PriceTable) { p.OffPeakStartHour = 25 },
		func(p *PriceTable) { p.OffPeakEndHour = -1 },
		func(p *PriceTable) { p.OffPeakStartHour, p.OffPeakEndHour = 5, 5 },
		func(p *PriceTable) { p.ProvisionedGBSecondUSD = -1 },
	}
	for i, mutate := range bad {
		p := offPeakPrice()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad price table %d validated", i)
		}
	}
}

func TestPlatformBillsOffPeakInvocations(t *testing.T) {
	cfg := testConfig()
	cfg.Price.OffPeakFactor = 0.5
	cfg.Price.OffPeakStartHour = 22
	cfg.Price.OffPeakEndHour = 6
	eng, p := newTestPlatform(t, cfg)
	f := deploy(t, p, "fn", 1024)

	var peakCost, offCost float64
	eng.At(sim.Time(12*3600), func() { // noon: peak
		f.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) { peakCost = r.CostUSD })
	})
	eng.At(sim.Time(23*3600), func() { // 23:00: off-peak
		f.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) { offCost = r.CostUSD })
	})
	eng.Run()
	if offCost >= peakCost {
		t.Fatalf("off-peak invocation ($%g) not cheaper than peak ($%g)", offCost, peakCost)
	}
}

func TestProvisionedConcurrencySkipsColdStarts(t *testing.T) {
	cfg := testConfig()
	cfg.ColdStart = ColdStartModel{MedianSec: 0.5, Sigma: 0}
	cfg.KeepAlive = 0 // no on-demand keep-alive: every non-provisioned start is cold
	eng, p := newTestPlatform(t, cfg)
	f, err := p.Deploy(FunctionConfig{
		Name: "warm", MemoryBytes: 1024 * model.MB, ProvisionedConcurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two concurrent invocations: one takes the provisioned slot, the
	// second must cold start.
	var colds int
	for i := 0; i < 2; i++ {
		f.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) {
			if r.ColdStart > 0 {
				colds++
			}
		})
	}
	eng.Run()
	if colds != 1 {
		t.Fatalf("cold starts = %d, want 1 (one provisioned slot)", colds)
	}
	// Sequential invocations afterwards reuse the freed provisioned slot.
	var rep model.ExecReport
	f.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) { rep = r })
	eng.Run()
	if rep.ColdStart != 0 {
		t.Fatal("freed provisioned slot not reused")
	}
}

func TestProvisionedCapacityFeeAccrues(t *testing.T) {
	cfg := testConfig()
	cfg.Price.ProvisionedGBSecondUSD = 1e-6
	eng, p := newTestPlatform(t, cfg)
	if _, err := p.Deploy(FunctionConfig{
		Name: "warm", MemoryBytes: 1024 * model.MB, ProvisionedConcurrency: 2,
	}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(3600)
	want := 2 * 1.0 * 3600 * 1e-6 // 2 slots × 1 GB × 1 h
	got := p.ProvisionedCostUSD()
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("ProvisionedCostUSD = %g, want %g", got, want)
	}
	// Removing the function stops accrual but keeps the accrued fee.
	p.Remove("warm")
	eng.RunUntil(7200)
	if after := p.ProvisionedCostUSD(); math.Abs(after-want)/want > 1e-9 {
		t.Fatalf("fee kept accruing after removal: %g", after)
	}
}

func TestProvisionedNegativeRejected(t *testing.T) {
	_, p := newTestPlatform(t, testConfig())
	if _, err := p.Deploy(FunctionConfig{
		Name: "bad", MemoryBytes: 1024 * model.MB, ProvisionedConcurrency: -1,
	}); err == nil {
		t.Fatal("negative provisioned concurrency accepted")
	}
}

func TestTransientFailureBilledAndNotParked(t *testing.T) {
	cfg := testConfig()
	cfg.FailureRate = 0.9999
	cfg.ColdStart = ColdStartModel{MedianSec: 0.5, Sigma: 0}
	eng := sim.NewEngine()
	p := NewPlatform(eng, rng.New(7), cfg)
	f := deploy(t, p, "flaky", 1024)
	var rep model.ExecReport
	f.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) { rep = r })
	eng.RunUntil(5)
	if !errors.Is(rep.Err, ErrTransient) {
		t.Fatalf("Err = %v, want ErrTransient", rep.Err)
	}
	if rep.CostUSD <= 0 {
		t.Fatal("crash not billed")
	}
	if f.WarmContainers() != 0 {
		t.Fatal("crashed container parked as warm")
	}
}
