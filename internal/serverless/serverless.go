// Package serverless simulates a Function-as-a-Service platform with the
// characteristics that drive the paper's resource-allocation problem:
//
//   - CPU proportional to the configured memory size (as on AWS Lambda,
//     where 1769 MB buys one full vCPU), with Amdahl-limited speedup above
//     one vCPU for mostly-serial code;
//   - cold starts, mitigated by a keep-alive container pool;
//   - per-request plus GB-second billing with a billing granularity;
//   - an account-level concurrency limit with asynchronous queueing.
//
// The simulator reproduces the time/cost response surface an allocator
// optimises over; absolute prices follow a Lambda-like public price sheet.
package serverless

import (
	"errors"
	"fmt"
	"math"

	"offload/internal/fault"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/sim"
)

// Errors reported in ExecReport.Err.
var (
	// ErrOutOfMemory is reported when a task's working set exceeds the
	// function's configured memory.
	ErrOutOfMemory = errors.New("serverless: task exceeds function memory")
	// ErrTimedOut is reported when execution exceeds the function timeout.
	ErrTimedOut = errors.New("serverless: execution exceeded function timeout")
	// ErrNotDeployed is reported when invoking an undeployed function.
	ErrNotDeployed = errors.New("serverless: function not deployed")
	// ErrTransient is an injected infrastructure failure (a crashed
	// container, a dropped invocation). It wraps model.ErrTransient, so
	// callers classify it with model.Transient and should retry.
	ErrTransient = fmt.Errorf("serverless: transient invocation failure: %w", model.ErrTransient)
)

// PriceTable describes the platform's billing model, optionally with a
// diurnal off-peak discount — the spot-market-like lever that makes
// delay-tolerant scheduling pay (experiment E11).
type PriceTable struct {
	PerRequestUSD  float64      // flat charge per invocation
	PerGBSecondUSD float64      // charge per GB of memory per billed second
	Granularity    sim.Duration // billed duration is rounded up to this
	MinBilled      sim.Duration // floor on the billed duration

	// Off-peak pricing: between OffPeakStartHour and OffPeakEndHour on the
	// virtual 24 h clock the GB-second rate is multiplied by
	// OffPeakFactor. The window may wrap midnight (start 22, end 6).
	// A zero factor disables the schedule.
	OffPeakFactor    float64
	OffPeakStartHour float64
	OffPeakEndHour   float64

	// ProvisionedGBSecondUSD is the capacity fee for provisioned
	// concurrency, charged per GB per wall-clock second whether or not the
	// warm capacity serves traffic.
	ProvisionedGBSecondUSD float64
}

// Validate reports whether the price table is usable.
func (p PriceTable) Validate() error {
	switch {
	case p.PerRequestUSD < 0 || p.PerGBSecondUSD < 0:
		return fmt.Errorf("serverless: negative price")
	case p.Granularity <= 0:
		return fmt.Errorf("serverless: billing granularity must be positive")
	case p.MinBilled < 0:
		return fmt.Errorf("serverless: negative minimum billed duration")
	case p.OffPeakFactor < 0:
		return fmt.Errorf("serverless: negative off-peak factor")
	case p.OffPeakFactor > 0 && (p.OffPeakStartHour < 0 || p.OffPeakStartHour >= 24 ||
		p.OffPeakEndHour < 0 || p.OffPeakEndHour >= 24):
		return fmt.Errorf("serverless: off-peak hours outside [0, 24)")
	case p.OffPeakFactor > 0 && p.OffPeakStartHour == p.OffPeakEndHour:
		return fmt.Errorf("serverless: empty off-peak window")
	case p.ProvisionedGBSecondUSD < 0:
		return fmt.Errorf("serverless: negative provisioned-capacity price")
	}
	return nil
}

// HasOffPeak reports whether a diurnal discount is configured.
func (p PriceTable) HasOffPeak() bool {
	return p.OffPeakFactor > 0 && p.OffPeakFactor != 1
}

// InOffPeak reports whether the virtual instant falls in the discount
// window.
func (p PriceTable) InOffPeak(at sim.Time) bool {
	if !p.HasOffPeak() {
		return false
	}
	hour := math.Mod(float64(at)/3600, 24)
	if hour < 0 {
		hour += 24
	}
	if p.OffPeakStartHour < p.OffPeakEndHour {
		return hour >= p.OffPeakStartHour && hour < p.OffPeakEndHour
	}
	return hour >= p.OffPeakStartHour || hour < p.OffPeakEndHour
}

// NextOffPeakStart returns the earliest instant at or after `at` that is
// inside the discount window. Without a schedule it returns `at`.
func (p PriceTable) NextOffPeakStart(at sim.Time) sim.Time {
	if !p.HasOffPeak() || p.InOffPeak(at) {
		return at
	}
	hour := math.Mod(float64(at)/3600, 24)
	wait := p.OffPeakStartHour - hour
	if wait < 0 {
		wait += 24
	}
	// Nudge a few milliseconds into the window so floating-point error at
	// large virtual times cannot land the result just before the boundary.
	wait += 1e-6
	return at.Add(sim.Duration(wait * 3600))
}

// Bill returns the peak-rate charge for one invocation of a function with
// memBytes of memory that ran for d. Planners use it as the conservative
// (worst-case) price; BillAt applies the time-of-day schedule.
func (p PriceTable) Bill(memBytes int64, d sim.Duration) float64 {
	return p.billWith(memBytes, d, 1)
}

// BillAt returns the charge with the time-of-day discount that applies at
// the given instant (invocations are priced by their start time).
func (p PriceTable) BillAt(memBytes int64, d sim.Duration, at sim.Time) float64 {
	factor := 1.0
	if p.InOffPeak(at) {
		factor = p.OffPeakFactor
	}
	return p.billWith(memBytes, d, factor)
}

func (p PriceTable) billWith(memBytes int64, d sim.Duration, factor float64) float64 {
	billed := d
	if billed < p.MinBilled {
		billed = p.MinBilled
	}
	units := math.Ceil(float64(billed) / float64(p.Granularity))
	billedSec := units * float64(p.Granularity)
	gb := float64(memBytes) / float64(model.GB)
	return p.PerRequestUSD + gb*billedSec*p.PerGBSecondUSD*factor
}

// ColdStartModel describes environment-provisioning delay: lognormal with
// the given median and dispersion, plus a per-MB code/runtime factor.
type ColdStartModel struct {
	MedianSec  float64 // median cold start in seconds
	Sigma      float64 // lognormal dispersion
	PerGBExtra float64 // additional seconds per GB of function memory
}

// Validate reports whether the model is usable.
func (c ColdStartModel) Validate() error {
	if c.MedianSec < 0 || c.Sigma < 0 || c.PerGBExtra < 0 {
		return fmt.Errorf("serverless: negative cold-start parameter")
	}
	return nil
}

// sample draws one cold-start duration for a function with memBytes memory.
func (c ColdStartModel) sample(src *rng.Source, memBytes int64) sim.Duration {
	if c.MedianSec == 0 {
		return 0
	}
	base := src.LogNormal(math.Log(c.MedianSec), c.Sigma)
	extra := c.PerGBExtra * float64(memBytes) / float64(model.GB)
	return sim.Duration(base + extra)
}

// Config describes a serverless platform.
type Config struct {
	Name string

	// MinMemory, MaxMemory and MemoryStep define the allowed memory ladder.
	MinMemory  int64
	MaxMemory  int64
	MemoryStep int64

	// BaselineHz is the cycle rate of one full vCPU. FullShareBytes is the
	// memory size that buys exactly one vCPU; CPU share scales linearly
	// with memory and is capped at MaxShare vCPUs.
	BaselineHz     float64
	FullShareBytes int64
	MaxShare       float64

	ColdStart ColdStartModel
	KeepAlive sim.Duration // idle-container lifetime

	// ConcurrencyLimit is the account-wide cap on simultaneously running
	// containers. Excess asynchronous invocations queue FIFO.
	ConcurrencyLimit int

	// DefaultTimeout aborts executions that run longer. Zero disables.
	DefaultTimeout sim.Duration

	// Memory pressure: when a task's working set fills more than
	// 1/PressureKneeRatio of the function's memory, execution slows down
	// quadratically (GC thrash, paging), up to 1+PressurePenalty at a
	// just-fitting working set. This is what makes the cost-vs-memory
	// curve U-shaped and gives the allocator a real optimum to find.
	// PressureKneeRatio <= 1 or PressurePenalty = 0 disables the effect.
	PressureKneeRatio float64
	PressurePenalty   float64

	// FailureRate is the probability an invocation dies with ErrTransient
	// partway through execution (still billed for the time consumed, as
	// real platforms do). Zero disables failure injection.
	FailureRate float64

	Price PriceTable
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.MinMemory <= 0 || c.MaxMemory < c.MinMemory:
		return fmt.Errorf("serverless: %s: bad memory range [%d, %d]", c.Name, c.MinMemory, c.MaxMemory)
	case c.MemoryStep <= 0:
		return fmt.Errorf("serverless: %s: memory step must be positive", c.Name)
	case c.BaselineHz <= 0:
		return fmt.Errorf("serverless: %s: baseline CPU must be positive", c.Name)
	case c.FullShareBytes <= 0:
		return fmt.Errorf("serverless: %s: full-share memory must be positive", c.Name)
	case c.MaxShare <= 0:
		return fmt.Errorf("serverless: %s: max CPU share must be positive", c.Name)
	case c.ConcurrencyLimit <= 0:
		return fmt.Errorf("serverless: %s: concurrency limit must be positive", c.Name)
	case c.KeepAlive < 0:
		return fmt.Errorf("serverless: %s: negative keep-alive", c.Name)
	case c.DefaultTimeout < 0:
		return fmt.Errorf("serverless: %s: negative timeout", c.Name)
	case c.PressurePenalty < 0:
		return fmt.Errorf("serverless: %s: negative pressure penalty", c.Name)
	case c.FailureRate < 0 || c.FailureRate >= 1:
		return fmt.Errorf("serverless: %s: failure rate %g outside [0,1)", c.Name, c.FailureRate)
	}
	if err := c.Price.Validate(); err != nil {
		return err
	}
	return c.ColdStart.Validate()
}

// LambdaLike returns a configuration calibrated to the published
// characteristics of AWS Lambda (2022-era): 128 MB–10 GB in 64 MB steps,
// one vCPU at 1769 MB (up to 6), ~250 ms median cold start, $0.20 per
// million requests and $0.0000166667 per GB-second billed at 1 ms
// granularity, 1000 concurrent executions.
func LambdaLike() Config {
	return Config{
		Name:              "lambda-like",
		MinMemory:         128 * model.MB,
		MaxMemory:         10240 * model.MB,
		MemoryStep:        64 * model.MB,
		BaselineHz:        2.5 * model.GHz,
		FullShareBytes:    1769 * model.MB,
		MaxShare:          6,
		ColdStart:         ColdStartModel{MedianSec: 0.25, Sigma: 0.35, PerGBExtra: 0.05},
		KeepAlive:         sim.Duration(7 * 60), // ~7 minutes, within reported 5–15
		ConcurrencyLimit:  1000,
		DefaultTimeout:    sim.Duration(15 * 60),
		PressureKneeRatio: 2.0,
		PressurePenalty:   1.5,
		Price: PriceTable{
			PerRequestUSD:          0.20 / 1e6,
			PerGBSecondUSD:         0.0000166667,
			Granularity:            0.001,
			MinBilled:              0.001,
			ProvisionedGBSecondUSD: 0.0000041667,
		},
	}
}

// GCFLike returns a configuration in the style of first-generation Google
// Cloud Functions: a coarser memory ladder (fixed tiers approximated as
// 256 MB steps), a full vCPU at 2048 MB, slower and more variable cold
// starts, a generous 15-minute keep-alive — and, crucially, **100 ms
// billing granularity**, which penalises sub-100 ms invocations that the
// Lambda-like 1 ms granularity bills almost nothing for (experiment E16).
func GCFLike() Config {
	return Config{
		Name:              "gcf-like",
		MinMemory:         256 * model.MB,
		MaxMemory:         8192 * model.MB,
		MemoryStep:        256 * model.MB,
		BaselineHz:        2.4 * model.GHz,
		FullShareBytes:    2048 * model.MB,
		MaxShare:          4,
		ColdStart:         ColdStartModel{MedianSec: 0.5, Sigma: 0.5, PerGBExtra: 0.1},
		KeepAlive:         sim.Duration(15 * 60),
		ConcurrencyLimit:  1000,
		DefaultTimeout:    sim.Duration(9 * 60),
		PressureKneeRatio: 2.0,
		PressurePenalty:   1.5,
		Price: PriceTable{
			PerRequestUSD:          0.40 / 1e6,
			PerGBSecondUSD:         0.0000165,
			Granularity:            0.1, // 100 ms
			MinBilled:              0.1,
			ProvisionedGBSecondUSD: 0.0000060,
		},
	}
}

// MemoryLadder returns the allowed memory sizes in ascending order.
func (c Config) MemoryLadder() []int64 {
	var ladder []int64
	for m := c.MinMemory; m <= c.MaxMemory; m += c.MemoryStep {
		ladder = append(ladder, m)
	}
	return ladder
}

// CPUShare returns the number of vCPUs a function with memBytes receives.
func (c Config) CPUShare(memBytes int64) float64 {
	share := float64(memBytes) / float64(c.FullShareBytes)
	return math.Min(share, c.MaxShare)
}

// PressureSlowdown returns the execution-time multiplier from memory
// pressure when a task with the given working set runs in memBytes of
// memory. It is 1 with ample headroom and rises quadratically to
// 1+PressurePenalty as the working set approaches the full memory size.
func (c Config) PressureSlowdown(workingSet, memBytes int64) float64 {
	if workingSet <= 0 || c.PressurePenalty == 0 || c.PressureKneeRatio <= 1 {
		return 1
	}
	ratio := float64(memBytes) / float64(workingSet)
	if ratio >= c.PressureKneeRatio {
		return 1
	}
	// ratio in [1, knee): 0 tightness at the knee, 1 at a just-fitting set.
	tight := (c.PressureKneeRatio - ratio) / (c.PressureKneeRatio - 1)
	if tight > 1 {
		tight = 1
	}
	return 1 + c.PressurePenalty*tight*tight
}

// ExecTime returns how long a task runs on a function with memBytes of
// memory: linear slowdown below one vCPU, Amdahl-limited speedup above
// it, and a memory-pressure penalty when the working set barely fits.
func (c Config) ExecTime(task *model.Task, memBytes int64) sim.Duration {
	share := c.CPUShare(memBytes)
	serialTime := task.Cycles / c.BaselineHz
	slow := c.PressureSlowdown(task.MemoryBytes, memBytes)
	if share <= 1 {
		return sim.Duration(serialTime * slow / share)
	}
	p := task.ParallelFraction
	speedup := 1 / ((1 - p) + p/share)
	return sim.Duration(serialTime * slow / speedup)
}

// Platform is a live serverless region bound to a simulation engine.
type Platform struct {
	eng *sim.Engine
	src *rng.Source
	cfg Config
	inj fault.Injector

	functions map[string]*Function
	slots     *sim.Resource // account concurrency

	// retiredProvisionedUSD keeps capacity fees of removed functions.
	retiredProvisionedUSD float64

	stats Stats
}

// Stats aggregates platform activity.
type Stats struct {
	Invocations uint64
	ColdStarts  uint64
	WarmStarts  uint64
	Errors      uint64
	BilledUSD   float64
}

// NewPlatform returns a platform on eng. It panics on invalid config.
func NewPlatform(eng *sim.Engine, src *rng.Source, cfg Config) *Platform {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Platform{
		eng:       eng,
		src:       src,
		cfg:       cfg,
		functions: make(map[string]*Function),
		slots:     sim.NewResource(eng, cfg.Name+"/concurrency", cfg.ConcurrencyLimit),
	}
	if cfg.FailureRate > 0 {
		// The legacy memoryless failure knob is the i.i.d. special case of
		// the composite fault model, bound to the platform's own stream so
		// the draw order (and therefore every golden) is unchanged.
		p.inj = fault.IID(src, cfg.FailureRate)
	}
	return p
}

// SetFaultInjector replaces the platform's fault model (including any
// injector derived from Config.FailureRate). A nil injector disables
// fault injection.
func (p *Platform) SetFaultInjector(inj fault.Injector) { p.inj = inj }

// FaultInjector returns the installed fault model, or nil.
func (p *Platform) FaultInjector() fault.Injector { return p.inj }

// SetColdStart replaces the cold-start model from the current virtual
// time on — regime drift, e.g. a heavier runtime image rolled out
// mid-run. Keep MedianSec's zero/non-zero status unchanged across the
// swap: the per-invocation sample draw count (and with it the platform's
// rng stream) then stays aligned, so runs remain deterministic.
func (p *Platform) SetColdStart(m ColdStartModel) error {
	if err := m.Validate(); err != nil {
		return err
	}
	p.cfg.ColdStart = m
	return nil
}

// Config returns the platform configuration.
func (p *Platform) Config() Config { return p.cfg }

// Stats returns cumulative activity counters.
func (p *Platform) Stats() Stats { return p.stats }

// FunctionConfig describes one deployed function.
type FunctionConfig struct {
	Name        string
	MemoryBytes int64
	// Timeout overrides the platform default when positive.
	Timeout sim.Duration
	// ProvisionedConcurrency keeps this many execution environments warm
	// at all times: invocations taking one skip the cold start, and the
	// capacity bills Price.ProvisionedGBSecondUSD per GB-second of wall
	// time whether used or not.
	ProvisionedConcurrency int
}

// Deploy registers (or re-configures) a function. Memory is clamped to the
// ladder: it must lie within [MinMemory, MaxMemory] and on a step boundary.
func (p *Platform) Deploy(fc FunctionConfig) (*Function, error) {
	if fc.Name == "" {
		return nil, fmt.Errorf("serverless: function with empty name")
	}
	if fc.MemoryBytes < p.cfg.MinMemory || fc.MemoryBytes > p.cfg.MaxMemory {
		return nil, fmt.Errorf("serverless: function %s memory %d outside [%d, %d]",
			fc.Name, fc.MemoryBytes, p.cfg.MinMemory, p.cfg.MaxMemory)
	}
	if (fc.MemoryBytes-p.cfg.MinMemory)%p.cfg.MemoryStep != 0 {
		return nil, fmt.Errorf("serverless: function %s memory %d not on a %d-byte step",
			fc.Name, fc.MemoryBytes, p.cfg.MemoryStep)
	}
	if fc.Timeout < 0 {
		return nil, fmt.Errorf("serverless: function %s negative timeout", fc.Name)
	}
	if fc.ProvisionedConcurrency < 0 {
		return nil, fmt.Errorf("serverless: function %s negative provisioned concurrency", fc.Name)
	}
	if f, ok := p.functions[fc.Name]; ok {
		// Re-deploy: new configuration, existing warm containers discarded
		// (as real platforms do on configuration change).
		f.accrueProvisioned()
		f.cfg = fc
		f.discardWarm()
		f.generation++
		return f, nil
	}
	f := &Function{platform: p, cfg: fc, provisionedSince: p.eng.Now()}
	p.functions[fc.Name] = f
	return f, nil
}

// Remove deletes a function. Invoking it afterwards fails.
func (p *Platform) Remove(name string) {
	if f, ok := p.functions[name]; ok {
		f.accrueProvisioned()
		p.retiredProvisionedUSD += f.provisionedUSD
		f.cfg.ProvisionedConcurrency = 0
		f.discardWarm()
		f.removed = true
		delete(p.functions, name)
	}
}

// ProvisionedCostUSD returns capacity fees accrued by every function's
// provisioned concurrency up to now, including removed functions.
func (p *Platform) ProvisionedCostUSD() float64 {
	total := p.retiredProvisionedUSD
	for _, f := range p.functions {
		total += f.ProvisionedCostUSD()
	}
	return total
}

// Function returns the deployed function by name, or nil.
func (p *Platform) Function(name string) *Function {
	return p.functions[name]
}

// Function is one deployed serverless function. It implements
// model.Executor, so schedulers can target it directly.
type Function struct {
	platform   *Platform
	cfg        FunctionConfig
	warm       []*container
	removed    bool
	generation int

	invocations uint64
	coldStarts  uint64
	billedUSD   float64

	// Provisioned-concurrency accounting.
	provisionedBusy  int
	provisionedSince sim.Time
	provisionedUSD   float64 // accrued capacity fees
}

var _ model.Executor = (*Function)(nil)

type container struct {
	expiry sim.EventRef
}

// Name returns the function name.
func (f *Function) Name() string { return f.cfg.Name }

// Placement returns model.PlaceFunction.
func (f *Function) Placement() model.Placement { return model.PlaceFunction }

// MemoryBytes returns the configured memory size.
func (f *Function) MemoryBytes() int64 { return f.cfg.MemoryBytes }

// Invocations returns how many invocations this function served.
func (f *Function) Invocations() uint64 { return f.invocations }

// ColdStarts returns how many invocations paid a cold start.
func (f *Function) ColdStarts() uint64 { return f.coldStarts }

// BilledUSD returns the money billed to this function so far.
func (f *Function) BilledUSD() float64 { return f.billedUSD }

// WarmContainers returns the current number of idle warm containers.
func (f *Function) WarmContainers() int { return len(f.warm) }

// accrueProvisioned folds the capacity fee up to now into provisionedUSD.
func (f *Function) accrueProvisioned() {
	n := f.cfg.ProvisionedConcurrency
	rate := f.platform.cfg.Price.ProvisionedGBSecondUSD
	if n > 0 && rate > 0 {
		gb := float64(f.cfg.MemoryBytes) / float64(model.GB)
		elapsed := float64(f.platform.eng.Now().Sub(f.provisionedSince))
		f.provisionedUSD += float64(n) * gb * elapsed * rate
	}
	f.provisionedSince = f.platform.eng.Now()
}

// ProvisionedCostUSD returns the capacity fees accrued by this function's
// provisioned concurrency up to the current virtual time.
func (f *Function) ProvisionedCostUSD() float64 {
	f.accrueProvisioned()
	return f.provisionedUSD
}

func (f *Function) discardWarm() {
	for _, c := range f.warm {
		f.platform.eng.Cancel(c.expiry)
	}
	f.warm = nil
}

// takeWarm pops a warm container if one exists, cancelling its expiry.
func (f *Function) takeWarm() bool {
	for len(f.warm) > 0 {
		c := f.warm[len(f.warm)-1]
		f.warm = f.warm[:len(f.warm)-1]
		f.platform.eng.Cancel(c.expiry)
		return true
	}
	return false
}

// parkWarm returns a container to the pool and schedules its expiry.
func (f *Function) parkWarm() {
	if f.removed || f.platform.cfg.KeepAlive == 0 {
		return
	}
	c := &container{}
	gen := f.generation
	c.expiry = f.platform.eng.After(f.platform.cfg.KeepAlive, func() {
		if f.generation != gen {
			return
		}
		for i, w := range f.warm {
			if w == c {
				f.warm = append(f.warm[:i], f.warm[i+1:]...)
				return
			}
		}
	})
	f.warm = append(f.warm, c)
}

// timeout returns the effective execution timeout.
func (f *Function) timeout() sim.Duration {
	if f.cfg.Timeout > 0 {
		return f.cfg.Timeout
	}
	return f.platform.cfg.DefaultTimeout
}

// Execute implements model.Executor: it queues on the account concurrency
// limit, pays a cold start unless a warm container is available, runs the
// task, bills it, and parks the container for reuse.
func (f *Function) Execute(task *model.Task, done func(model.ExecReport)) {
	if done == nil {
		panic("serverless: Execute with nil callback")
	}
	p := f.platform
	start := p.eng.Now()
	fail := func(err error) {
		p.stats.Errors++
		p.eng.After(0, func() {
			done(model.ExecReport{Start: start, End: p.eng.Now(), Err: err})
		})
	}
	if f.removed || p.functions[f.cfg.Name] != f {
		fail(ErrNotDeployed)
		return
	}
	if task.MemoryBytes > f.cfg.MemoryBytes {
		fail(fmt.Errorf("%w: need %d, have %d", ErrOutOfMemory, task.MemoryBytes, f.cfg.MemoryBytes))
		return
	}

	p.slots.Acquire(func() {
		granted := p.eng.Now()
		var cold sim.Duration
		usedProvisioned := false
		switch {
		case f.provisionedBusy < f.cfg.ProvisionedConcurrency:
			f.provisionedBusy++
			usedProvisioned = true
			p.stats.WarmStarts++
		case f.takeWarm():
			p.stats.WarmStarts++
		default:
			cold = p.cfg.ColdStart.sample(p.src, f.cfg.MemoryBytes)
			f.coldStarts++
			p.stats.ColdStarts++
		}
		exec := p.cfg.ExecTime(task, f.cfg.MemoryBytes)
		// Fault model: sampled before the timeout clamp so a straggler
		// slowdown can push the invocation over the timeout, while a crash
		// cuts the (possibly clamped) execution short at CrashFrac of the
		// way through — still billed, as real platforms do.
		dec := fault.Decision{Slowdown: 1}
		if p.inj != nil {
			dec = p.inj.Decide(granted)
		}
		if dec.Slowdown > 1 {
			exec = sim.Duration(float64(exec) * dec.Slowdown)
		}
		timedOut := false
		if to := f.timeout(); to > 0 && exec > to {
			exec = to
			timedOut = true
		}
		crashed := dec.Crash
		if crashed {
			exec = sim.Duration(float64(exec) * dec.CrashFrac)
			timedOut = false
		}
		p.eng.After(cold+exec, func() {
			p.slots.Release()
			switch {
			case usedProvisioned:
				// The environment returns to the provisioned pool (the
				// platform replaces crashed provisioned environments).
				f.provisionedBusy--
			case crashed:
				// A crashed container is not returned to the warm pool.
			default:
				f.parkWarm()
			}
			f.invocations++
			p.stats.Invocations++
			// Billed duration includes initialisation, as on-demand billing
			// does for container runtimes; cost accrues even for timeouts
			// and crashes. Pricing follows the invocation's start time.
			cost := p.cfg.Price.BillAt(f.cfg.MemoryBytes, cold+exec, granted)
			f.billedUSD += cost
			p.stats.BilledUSD += cost
			rep := model.ExecReport{
				Start:     start,
				End:       p.eng.Now(),
				QueueWait: granted.Sub(start),
				ColdStart: cold,
				CostUSD:   cost,
			}
			if timedOut {
				rep.Err = ErrTimedOut
				p.stats.Errors++
			}
			if crashed {
				rep.Err = ErrTransient
				p.stats.Errors++
			}
			done(rep)
		})
	})
}

// RunningSlots returns the number of concurrency slots in use.
func (p *Platform) RunningSlots() int { return p.slots.InUse() }

// QueuedInvocations returns invocations waiting for a concurrency slot.
func (p *Platform) QueuedInvocations() int { return p.slots.QueueLen() }

// WarmContainers returns the warm containers pooled across all deployed
// functions. Summing over the map is order-independent, so the result is
// deterministic despite map iteration.
func (p *Platform) WarmContainers() int {
	total := 0
	for _, f := range p.functions {
		total += len(f.warm)
	}
	return total
}

// ColdStartFraction returns cold starts as a fraction of invocations so
// far, or 0 before the first invocation.
func (p *Platform) ColdStartFraction() float64 {
	if p.stats.Invocations == 0 {
		return 0
	}
	return float64(p.stats.ColdStarts) / float64(p.stats.Invocations)
}
