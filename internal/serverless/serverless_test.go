package serverless

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/sim"
)

// testConfig returns a platform with deterministic (zero) cold starts and
// simple round numbers: 1 GHz per vCPU, full share at 1 GB.
func testConfig() Config {
	return Config{
		Name:             "test",
		MinMemory:        128 * model.MB,
		MaxMemory:        4096 * model.MB,
		MemoryStep:       128 * model.MB,
		BaselineHz:       1e9,
		FullShareBytes:   1024 * model.MB,
		MaxShare:         4,
		KeepAlive:        60,
		ConcurrencyLimit: 10,
		Price: PriceTable{
			PerRequestUSD:  2e-7,
			PerGBSecondUSD: 1.6667e-5,
			Granularity:    0.001,
			MinBilled:      0.001,
		},
	}
}

func newTestPlatform(t *testing.T, cfg Config) (*sim.Engine, *Platform) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewPlatform(eng, rng.New(1), cfg)
}

func deploy(t *testing.T, p *Platform, name string, memMB int64) *Function {
	t.Helper()
	f, err := p.Deploy(FunctionConfig{Name: name, MemoryBytes: memMB * model.MB})
	if err != nil {
		t.Fatalf("Deploy(%s, %d MB): %v", name, memMB, err)
	}
	return f
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"zero min memory", func(c *Config) { c.MinMemory = 0 }, false},
		{"max below min", func(c *Config) { c.MaxMemory = c.MinMemory - 1 }, false},
		{"zero step", func(c *Config) { c.MemoryStep = 0 }, false},
		{"zero cpu", func(c *Config) { c.BaselineHz = 0 }, false},
		{"zero full share", func(c *Config) { c.FullShareBytes = 0 }, false},
		{"zero max share", func(c *Config) { c.MaxShare = 0 }, false},
		{"zero concurrency", func(c *Config) { c.ConcurrencyLimit = 0 }, false},
		{"negative keepalive", func(c *Config) { c.KeepAlive = -1 }, false},
		{"negative price", func(c *Config) { c.Price.PerRequestUSD = -1 }, false},
		{"zero granularity", func(c *Config) { c.Price.Granularity = 0 }, false},
		{"negative cold start", func(c *Config) { c.ColdStart.MedianSec = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if got := cfg.Validate() == nil; got != tt.ok {
				t.Fatalf("Validate() ok = %v, want %v (%v)", got, tt.ok, cfg.Validate())
			}
		})
	}
}

func TestLambdaLikeValid(t *testing.T) {
	if err := LambdaLike().Validate(); err != nil {
		t.Fatalf("LambdaLike invalid: %v", err)
	}
	ladder := LambdaLike().MemoryLadder()
	if ladder[0] != 128*model.MB || ladder[len(ladder)-1] != 10240*model.MB {
		t.Fatalf("LambdaLike ladder endpoints wrong: %d..%d", ladder[0], ladder[len(ladder)-1])
	}
}

func TestBillRoundsUpToGranularity(t *testing.T) {
	p := PriceTable{PerRequestUSD: 0, PerGBSecondUSD: 1, Granularity: 0.1, MinBilled: 0}
	tests := []struct {
		dur  sim.Duration
		want float64 // billed seconds for a 1 GB function
	}{
		{0.01, 0.1},
		{0.1, 0.1},
		{0.11, 0.2},
		{1.0, 1.0},
	}
	for _, tt := range tests {
		got := p.Bill(model.GB, tt.dur)
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Bill(1GB, %v) = %g, want %g", tt.dur, got, tt.want)
		}
	}
}

func TestBillMinimum(t *testing.T) {
	p := PriceTable{PerGBSecondUSD: 1, Granularity: 0.001, MinBilled: 0.1}
	if got := p.Bill(model.GB, 0.001); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("Bill below minimum = %g, want 0.1", got)
	}
}

func TestBillMonotone(t *testing.T) {
	p := LambdaLike().Price
	f := func(ms1, ms2 uint16) bool {
		d1, d2 := sim.Duration(ms1)/1000, sim.Duration(ms2)/1000
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return p.Bill(model.GB, d1) <= p.Bill(model.GB, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCPUShareScaling(t *testing.T) {
	cfg := testConfig()
	if got := cfg.CPUShare(512 * model.MB); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("CPUShare(512MB) = %g, want 0.5", got)
	}
	if got := cfg.CPUShare(1024 * model.MB); math.Abs(got-1) > 1e-9 {
		t.Fatalf("CPUShare(1GB) = %g, want 1", got)
	}
	// Cap at MaxShare = 4 even for giant memory.
	if got := cfg.CPUShare(100 * 1024 * model.MB); got != 4 {
		t.Fatalf("CPUShare(100GB) = %g, want cap 4", got)
	}
}

func TestExecTimeSerialDoesNotImproveAboveFullShare(t *testing.T) {
	cfg := testConfig()
	task := &model.Task{Cycles: 1e9} // 1 s at one vCPU, fully serial
	at1GB := cfg.ExecTime(task, 1024*model.MB)
	at4GB := cfg.ExecTime(task, 4096*model.MB)
	if math.Abs(float64(at1GB)-1) > 1e-9 {
		t.Fatalf("ExecTime at 1GB = %v, want 1", at1GB)
	}
	if math.Abs(float64(at4GB-at1GB)) > 1e-9 {
		t.Fatalf("serial task sped up above full share: %v vs %v", at4GB, at1GB)
	}
}

func TestExecTimeParallelAmdahl(t *testing.T) {
	cfg := testConfig()
	task := &model.Task{Cycles: 1e9, ParallelFraction: 0.8}
	at4GB := cfg.ExecTime(task, 4096*model.MB) // share 4
	want := 1.0 / (1 / (0.2 + 0.8/4))          // = 0.4 s
	if math.Abs(float64(at4GB)-want) > 1e-9 {
		t.Fatalf("Amdahl ExecTime = %v, want %v", at4GB, want)
	}
}

func TestExecTimeBelowFullShareLinear(t *testing.T) {
	cfg := testConfig()
	task := &model.Task{Cycles: 1e9}
	at512 := cfg.ExecTime(task, 512*model.MB)
	if math.Abs(float64(at512)-2) > 1e-9 {
		t.Fatalf("ExecTime at half share = %v, want 2", at512)
	}
}

func TestExecTimeMonotoneInMemory(t *testing.T) {
	cfg := testConfig()
	task := &model.Task{Cycles: 5e8, ParallelFraction: 0.5}
	prev := sim.Duration(math.Inf(1))
	for _, m := range cfg.MemoryLadder() {
		d := cfg.ExecTime(task, m)
		if d > prev+1e-12 {
			t.Fatalf("ExecTime increased with memory at %d", m)
		}
		prev = d
	}
}

func TestPressureSlowdown(t *testing.T) {
	cfg := testConfig()
	cfg.PressureKneeRatio = 2
	cfg.PressurePenalty = 1.5
	ws := int64(512 * model.MB)
	if got := cfg.PressureSlowdown(ws, 2*ws); got != 1 {
		t.Fatalf("slowdown at knee = %g, want 1", got)
	}
	if got := cfg.PressureSlowdown(ws, 4*ws); got != 1 {
		t.Fatalf("slowdown with ample headroom = %g, want 1", got)
	}
	if got := cfg.PressureSlowdown(ws, ws); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("slowdown at just-fitting = %g, want 2.5", got)
	}
	mid := cfg.PressureSlowdown(ws, ws+ws/2) // ratio 1.5, tight 0.5
	if math.Abs(mid-(1+1.5*0.25)) > 1e-9 {
		t.Fatalf("slowdown at ratio 1.5 = %g, want 1.375", mid)
	}
	// Disabled configurations never slow down.
	if got := testConfig().PressureSlowdown(ws, ws); got != 1 {
		t.Fatalf("disabled pressure slowdown = %g", got)
	}
	if got := cfg.PressureSlowdown(0, ws); got != 1 {
		t.Fatalf("zero working set slowdown = %g", got)
	}
}

func TestPressureMakesExecTimeNonMonotoneCostCurve(t *testing.T) {
	cfg := testConfig()
	cfg.PressureKneeRatio = 2
	cfg.PressurePenalty = 1.5
	task := &model.Task{Cycles: 10e9, MemoryBytes: 512 * model.MB}
	tight := cfg.ExecTime(task, 512*model.MB)
	roomy := cfg.ExecTime(task, 1024*model.MB)
	if tight <= roomy*2 {
		t.Fatalf("pressure too weak: tight %v vs roomy %v", tight, roomy)
	}
}

func TestDeployValidation(t *testing.T) {
	_, p := newTestPlatform(t, testConfig())
	tests := []struct {
		name string
		fc   FunctionConfig
		ok   bool
	}{
		{"valid", FunctionConfig{Name: "f", MemoryBytes: 256 * model.MB}, true},
		{"empty name", FunctionConfig{MemoryBytes: 256 * model.MB}, false},
		{"below min", FunctionConfig{Name: "f2", MemoryBytes: 64 * model.MB}, false},
		{"above max", FunctionConfig{Name: "f3", MemoryBytes: 8192 * model.MB}, false},
		{"off step", FunctionConfig{Name: "f4", MemoryBytes: 200 * model.MB}, false},
		{"negative timeout", FunctionConfig{Name: "f5", MemoryBytes: 256 * model.MB, Timeout: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := p.Deploy(tt.fc)
			if (err == nil) != tt.ok {
				t.Fatalf("Deploy = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestInvokeColdThenWarm(t *testing.T) {
	cfg := testConfig()
	cfg.ColdStart = ColdStartModel{MedianSec: 0.5, Sigma: 0} // deterministic 0.5 s
	eng, p := newTestPlatform(t, cfg)
	f := deploy(t, p, "fn", 1024)

	task := &model.Task{Cycles: 1e9}
	var first, second model.ExecReport
	f.Execute(task, func(r model.ExecReport) {
		first = r
		f.Execute(task, func(r2 model.ExecReport) { second = r2 })
	})
	eng.Run()

	if first.ColdStart != 0.5 {
		t.Fatalf("first invocation cold start = %v, want 0.5", first.ColdStart)
	}
	if math.Abs(float64(first.Duration())-1.5) > 1e-9 {
		t.Fatalf("first duration = %v, want 1.5", first.Duration())
	}
	if second.ColdStart != 0 {
		t.Fatalf("second invocation cold start = %v, want warm", second.ColdStart)
	}
	if f.ColdStarts() != 1 || f.Invocations() != 2 {
		t.Fatalf("ColdStarts=%d Invocations=%d", f.ColdStarts(), f.Invocations())
	}
}

func TestKeepAliveExpiry(t *testing.T) {
	cfg := testConfig()
	cfg.ColdStart = ColdStartModel{MedianSec: 0.5, Sigma: 0}
	cfg.KeepAlive = 10
	eng, p := newTestPlatform(t, cfg)
	f := deploy(t, p, "fn", 1024)

	task := &model.Task{Cycles: 1e9}
	f.Execute(task, func(model.ExecReport) {})
	eng.RunUntil(5) // execution done at 1.5, keep-alive expires at 11.5
	if f.WarmContainers() != 1 {
		t.Fatalf("WarmContainers = %d after first run", f.WarmContainers())
	}

	// Invoke again after the keep-alive expired: must be cold.
	var rep model.ExecReport
	eng.At(30, func() {
		f.Execute(task, func(r model.ExecReport) { rep = r })
	})
	eng.Run()
	if rep.ColdStart == 0 {
		t.Fatal("invocation after keep-alive expiry was warm")
	}
	if f.ColdStarts() != 2 {
		t.Fatalf("ColdStarts = %d, want 2", f.ColdStarts())
	}
}

func TestWarmReuseWithinKeepAlive(t *testing.T) {
	cfg := testConfig()
	cfg.ColdStart = ColdStartModel{MedianSec: 0.5, Sigma: 0}
	cfg.KeepAlive = 100
	eng, p := newTestPlatform(t, cfg)
	f := deploy(t, p, "fn", 1024)

	task := &model.Task{Cycles: 1e9}
	f.Execute(task, func(model.ExecReport) {})
	var rep model.ExecReport
	eng.At(50, func() {
		f.Execute(task, func(r model.ExecReport) { rep = r })
	})
	eng.Run()
	if rep.ColdStart != 0 {
		t.Fatal("invocation within keep-alive was cold")
	}
}

func TestConcurrencyLimitQueues(t *testing.T) {
	cfg := testConfig()
	cfg.ConcurrencyLimit = 2
	eng, p := newTestPlatform(t, cfg)
	f := deploy(t, p, "fn", 1024)

	var ends []sim.Time
	for i := 0; i < 4; i++ {
		f.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) {
			ends = append(ends, r.End)
		})
	}
	eng.Run()
	if len(ends) != 4 {
		t.Fatalf("got %d completions", len(ends))
	}
	for i, want := range []float64{1, 1, 2, 2} {
		if math.Abs(float64(ends[i])-want) > 1e-9 {
			t.Fatalf("completion %d at %v, want %v", i, ends[i], want)
		}
	}
}

func TestOutOfMemoryRejected(t *testing.T) {
	eng, p := newTestPlatform(t, testConfig())
	f := deploy(t, p, "small", 128)
	var rep model.ExecReport
	f.Execute(&model.Task{Cycles: 1, MemoryBytes: 512 * model.MB}, func(r model.ExecReport) { rep = r })
	eng.Run()
	if !errors.Is(rep.Err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", rep.Err)
	}
}

func TestTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.DefaultTimeout = 2
	eng, p := newTestPlatform(t, cfg)
	f := deploy(t, p, "fn", 1024)
	var rep model.ExecReport
	f.Execute(&model.Task{Cycles: 10e9}, func(r model.ExecReport) { rep = r }) // 10 s > 2 s
	eng.Run()
	if !errors.Is(rep.Err, ErrTimedOut) {
		t.Fatalf("err = %v, want ErrTimedOut", rep.Err)
	}
	if math.Abs(float64(rep.Duration())-2) > 1e-9 {
		t.Fatalf("timed-out duration = %v, want 2", rep.Duration())
	}
	if rep.CostUSD == 0 {
		t.Fatal("timeout was not billed")
	}
}

func TestPerFunctionTimeoutOverride(t *testing.T) {
	cfg := testConfig()
	cfg.DefaultTimeout = 100
	eng, p := newTestPlatform(t, cfg)
	f, err := p.Deploy(FunctionConfig{Name: "fast", MemoryBytes: 1024 * model.MB, Timeout: 1})
	if err != nil {
		t.Fatal(err)
	}
	var rep model.ExecReport
	f.Execute(&model.Task{Cycles: 5e9}, func(r model.ExecReport) { rep = r })
	eng.Run()
	if !errors.Is(rep.Err, ErrTimedOut) {
		t.Fatalf("err = %v, want ErrTimedOut from override", rep.Err)
	}
}

func TestRemoveRejectsInvocations(t *testing.T) {
	eng, p := newTestPlatform(t, testConfig())
	f := deploy(t, p, "gone", 1024)
	p.Remove("gone")
	var rep model.ExecReport
	f.Execute(&model.Task{Cycles: 1}, func(r model.ExecReport) { rep = r })
	eng.Run()
	if !errors.Is(rep.Err, ErrNotDeployed) {
		t.Fatalf("err = %v, want ErrNotDeployed", rep.Err)
	}
}

func TestRedeployDiscardsWarmContainers(t *testing.T) {
	cfg := testConfig()
	cfg.ColdStart = ColdStartModel{MedianSec: 0.5, Sigma: 0}
	eng, p := newTestPlatform(t, cfg)
	f := deploy(t, p, "fn", 1024)
	f.Execute(&model.Task{Cycles: 1e9}, func(model.ExecReport) {})
	eng.RunUntil(5)
	if f.WarmContainers() != 1 {
		t.Fatal("no warm container after first run")
	}
	deploy(t, p, "fn", 2048) // reconfigure
	if f.WarmContainers() != 0 {
		t.Fatal("redeploy kept warm containers")
	}
	var rep model.ExecReport
	f.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) { rep = r })
	eng.Run()
	if rep.ColdStart == 0 {
		t.Fatal("invocation after redeploy was warm")
	}
}

func TestBillingAccumulates(t *testing.T) {
	eng, p := newTestPlatform(t, testConfig())
	f := deploy(t, p, "fn", 1024)
	for i := 0; i < 5; i++ {
		f.Execute(&model.Task{Cycles: 1e9}, func(model.ExecReport) {})
	}
	eng.Run()
	// 5 × (2e-7 + 1 GB × 1 s × 1.6667e-5)
	want := 5 * (2e-7 + 1.6667e-5)
	if math.Abs(f.BilledUSD()-want)/want > 1e-6 {
		t.Fatalf("BilledUSD = %g, want %g", f.BilledUSD(), want)
	}
	if math.Abs(p.Stats().BilledUSD-want)/want > 1e-6 {
		t.Fatalf("platform BilledUSD = %g, want %g", p.Stats().BilledUSD, want)
	}
	if p.Stats().Invocations != 5 {
		t.Fatalf("Invocations = %d", p.Stats().Invocations)
	}
}

func TestColdStartSampleScalesWithMemory(t *testing.T) {
	m := ColdStartModel{MedianSec: 0.2, Sigma: 0, PerGBExtra: 1}
	src := rng.New(1)
	small := m.sample(src, model.GB)
	big := m.sample(src, 4*model.GB)
	if big <= small {
		t.Fatalf("cold start did not grow with memory: %v vs %v", small, big)
	}
}

func TestStatsColdWarmCounts(t *testing.T) {
	cfg := testConfig()
	cfg.ColdStart = ColdStartModel{MedianSec: 0.1, Sigma: 0}
	eng, p := newTestPlatform(t, cfg)
	f := deploy(t, p, "fn", 1024)
	// Sequential invocations: 1 cold + 4 warm.
	var chain func(i int)
	chain = func(i int) {
		if i == 5 {
			return
		}
		f.Execute(&model.Task{Cycles: 1e8}, func(model.ExecReport) { chain(i + 1) })
	}
	chain(0)
	eng.Run()
	s := p.Stats()
	if s.ColdStarts != 1 || s.WarmStarts != 4 {
		t.Fatalf("ColdStarts=%d WarmStarts=%d, want 1/4", s.ColdStarts, s.WarmStarts)
	}
}
