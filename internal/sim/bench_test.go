package sim

import "testing"

// BenchmarkEventScheduleFire measures the kernel's hot loop: schedule one
// event and fire it. This is the path every simulated action takes, so
// allocs/op here multiply by tens of millions in a large run.
func BenchmarkEventScheduleFire(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.Step()
	}
}

// BenchmarkEventScheduleCancel measures the schedule-then-cancel cycle:
// the fate of every hedge timer, idle-shutdown timer and keep-alive expiry
// that never fires.
func BenchmarkEventScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.After(1, fn)
		e.Cancel(ev)
	}
}

// BenchmarkEventChurn1k measures schedule+fire with 1024 events always
// pending, so the sift paths work at realistic heap depth instead of the
// trivial one-element case.
func BenchmarkEventChurn1k(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.After(Duration(1+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(2048, fn)
		e.Step()
	}
}
