package sim

import (
	"sync"
	"time"
)

// Clock paces a Realtime loop: it decides how long to wait before the
// next pending event may fire, mapping virtual engine time onto the
// caller's notion of real time.
//
// Two implementations exist. SimClock never waits — virtual time jumps
// from event to event exactly as Engine.Run would advance it, so a
// Realtime loop driven by a SimClock executes the same event sequence a
// batch run executes, and stays fully deterministic and testable.
// WallClock anchors virtual time zero at a wall instant and sleeps real
// time between events, which is what a live daemon wants.
type Clock interface {
	// Now returns the current virtual time as the clock sees it. The
	// second return is false for clocks with no external notion of time
	// (SimClock): the engine's own clock is then the only time there is,
	// and the loop must not advance it between events.
	Now() (Time, bool)

	// WaitUntil blocks until virtual time t arrives or wake receives.
	// It returns true when t was reached and the event due at t may
	// fire, false when the wait was interrupted early.
	WaitUntil(t Time, wake <-chan struct{}) bool
}

// SimClock is the deterministic clock: virtual time is the engine's own
// clock and waits return immediately, so events fire back to back in
// timestamp order exactly as in a batch simulation. The zero value is
// ready to use.
type SimClock struct{}

// Now reports that a SimClock has no external time source.
func (SimClock) Now() (Time, bool) { return 0, false }

// WaitUntil returns immediately: in simulated time the next event is
// always due now.
func (SimClock) WaitUntil(Time, <-chan struct{}) bool { return true }

// WallClock maps virtual time onto the process wall clock: virtual zero
// is anchored at the first use, and one virtual second lasts 1/Scale
// wall seconds. Scale 1 runs the simulation in real time; larger scales
// time-dilate it (scale 60 packs a virtual minute into a wall second),
// which is how a load test compresses hours of simulated pricing windows
// into a short run. Construct with NewWallClock.
type WallClock struct {
	scale  float64
	once   sync.Once
	origin time.Time
}

// NewWallClock returns a wall clock running at the given time-dilation
// factor; scale <= 0 defaults to 1 (real time).
func NewWallClock(scale float64) *WallClock {
	if scale <= 0 {
		scale = 1
	}
	return &WallClock{scale: scale}
}

// anchor fixes virtual zero at the first moment the clock is consulted.
func (c *WallClock) anchor() {
	c.once.Do(func() { c.origin = time.Now() })
}

// Now returns the virtual time corresponding to the current wall time.
func (c *WallClock) Now() (Time, bool) {
	c.anchor()
	return Time(time.Since(c.origin).Seconds() * c.scale), true
}

// wallDeadline converts virtual time t into the wall instant it occurs.
func (c *WallClock) wallDeadline(t Time) time.Time {
	return c.origin.Add(time.Duration(float64(t) / c.scale * float64(time.Second)))
}

// WaitUntil sleeps until virtual time t's wall instant, or until wake
// receives, whichever comes first.
func (c *WallClock) WaitUntil(t Time, wake <-chan struct{}) bool {
	c.anchor()
	d := time.Until(c.wallDeadline(t))
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-wake:
		return false
	}
}

// Realtime drives an Engine from a single owner goroutine against a
// Clock, while other goroutines inject work through Do. This is the
// serve-mode adapter: the event core — engine, scheduler, substrates —
// runs unchanged and untouched by locks, because every access happens on
// the loop goroutine; concurrency stops at the inbox channel.
//
// With a SimClock the loop degenerates into Engine.Run interleaved with
// injected closures: events fire in timestamp order with no waiting, so
// tests drive the exact code the daemon runs, deterministically. With a
// WallClock the loop sleeps between events and advances the engine clock
// to "wall now" before running injected work, so submissions are stamped
// with the virtual time at which they really arrived.
type Realtime struct {
	eng   *Engine
	clock Clock
	inbox chan func()
	wake  chan struct{}
	stop  chan struct{}
	done  chan struct{}

	stopOnce sync.Once
}

// NewRealtime returns a loop over eng paced by clock. A nil clock means
// SimClock. Call Run (usually in its own goroutine) to start the loop.
func NewRealtime(eng *Engine, clock Clock) *Realtime {
	if clock == nil {
		clock = SimClock{}
	}
	return &Realtime{
		eng:   eng,
		clock: clock,
		inbox: make(chan func(), 8192),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Engine returns the engine the loop drives. Only loop-injected code
// (closures passed to Do) may touch it.
func (r *Realtime) Engine() *Engine { return r.eng }

// Do queues fn to run on the loop goroutine at the current virtual time,
// waking the loop if it is sleeping. It is safe to call from any
// goroutine and blocks only when the inbox is full (backpressure). Do
// after Stop is a no-op returning false; true means fn was queued.
func (r *Realtime) Do(fn func()) bool {
	if fn == nil {
		return false
	}
	select {
	case <-r.stop:
		return false
	default:
	}
	select {
	case r.inbox <- fn:
		r.signal()
		return true
	case <-r.stop:
		return false
	}
}

// Call runs fn on the loop goroutine and blocks until it has completed:
// a synchronous snapshot point for stats, reports and registries. It
// returns false (without running fn) when the loop has stopped.
func (r *Realtime) Call(fn func()) bool {
	ran := make(chan struct{})
	if !r.Do(func() { fn(); close(ran) }) {
		return false
	}
	select {
	case <-ran:
		return true
	case <-r.done:
		// The loop stopped before draining fn; it may still have run if
		// the loop exited right after executing it.
		select {
		case <-ran:
			return true
		default:
			return false
		}
	}
}

// signal nudges a loop blocked in WaitUntil. The token is sticky (one
// buffered slot), so at worst the loop makes one spurious early pass.
func (r *Realtime) signal() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// Stop makes Run return after the in-flight event or closure completes.
// Pending events stay in the engine; injected closures not yet executed
// are dropped. Safe to call more than once, from any goroutine.
func (r *Realtime) Stop() {
	r.stopOnce.Do(func() {
		close(r.stop)
		r.signal()
	})
}

// Done returns a channel closed when Run has exited.
func (r *Realtime) Done() <-chan struct{} { return r.done }

// Run executes the loop until Stop. It must be called exactly once, and
// owns the engine for its whole duration.
func (r *Realtime) Run() {
	defer close(r.done)
	for {
		// Catch the engine clock up to the external clock, firing every
		// event that is already due. A SimClock reports no external time,
		// leaving the engine clock to advance event by event.
		if now, ok := r.clock.Now(); ok && now > r.eng.Now() {
			r.eng.RunUntil(now)
		}
		// Drain injected work; each closure runs at the current virtual
		// time, which is exactly "now" under a wall clock.
		for {
			select {
			case fn := <-r.inbox:
				fn()
				continue
			default:
			}
			break
		}
		select {
		case <-r.stop:
			return
		default:
		}
		if r.eng.Pending() == 0 {
			// Idle: nothing to wait for but work or shutdown.
			select {
			case fn := <-r.inbox:
				fn()
			case <-r.stop:
				return
			}
			continue
		}
		if r.clock.WaitUntil(r.eng.NextEventTime(), r.wake) {
			r.eng.Step()
		}
	}
}
