package sim

import (
	"sync"
	"testing"
	"time"
)

// A Realtime loop on a SimClock must fire events in exactly the order and
// at exactly the virtual times Engine.Run would: the serve path reuses
// the batch event core unchanged.
func TestRealtimeSimClockMatchesBatchRun(t *testing.T) {
	run := func(drive func(e *Engine, schedule func())) []Time {
		var fired []Time
		e := NewEngine()
		schedule := func() {
			for _, d := range []Duration{3, 1, 2, 1} {
				e.After(d, func() { fired = append(fired, e.Now()) })
			}
			e.After(1.5, func() {
				e.After(0.25, func() { fired = append(fired, e.Now()) })
			})
		}
		drive(e, schedule)
		return fired
	}

	batch := run(func(e *Engine, schedule func()) {
		schedule()
		e.Run()
	})

	realtime := run(func(e *Engine, schedule func()) {
		r := NewRealtime(e, SimClock{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); r.Run() }()
		if !r.Call(schedule) {
			t.Fatal("Call failed on a running loop")
		}
		// Wait until the queue drains, then stop. Call runs on the loop
		// goroutine, so a drained queue seen there is authoritative.
		for {
			var pending int
			if !r.Call(func() { pending = e.Pending() }) {
				t.Fatal("loop stopped early")
			}
			if pending == 0 {
				break
			}
		}
		r.Stop()
		wg.Wait()
	})

	if len(batch) != len(realtime) {
		t.Fatalf("batch fired %d events, realtime %d", len(batch), len(realtime))
	}
	for i := range batch {
		if batch[i] != realtime[i] {
			t.Fatalf("event %d: batch at %v, realtime at %v", i, batch[i], realtime[i])
		}
	}
}

func TestRealtimeStop(t *testing.T) {
	e := NewEngine()
	r := NewRealtime(e, SimClock{})
	go r.Run()
	if !r.Call(func() {}) {
		t.Fatal("Call on a running loop failed")
	}
	r.Stop()
	select {
	case <-r.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("loop did not stop")
	}
	if r.Do(func() {}) {
		t.Error("Do after Stop reported queued")
	}
	if r.Call(func() {}) {
		t.Error("Call after Stop reported ran")
	}
	r.Stop() // idempotent
}

func TestRealtimeInjectedWorkRunsAtCurrentTime(t *testing.T) {
	e := NewEngine()
	r := NewRealtime(e, nil) // nil clock defaults to SimClock
	go r.Run()
	defer func() { r.Stop(); <-r.Done() }()

	var fired []Time
	// Schedule an event at t=2, let it fire, then inject more work: the
	// injected closure must see the advanced clock.
	if !r.Call(func() { e.After(2, func() { fired = append(fired, e.Now()) }) }) {
		t.Fatal("Call failed")
	}
	for {
		var pending int
		r.Call(func() { pending = e.Pending() })
		if pending == 0 {
			break
		}
	}
	var now Time
	r.Call(func() { now = e.Now() })
	if now != 2 {
		t.Fatalf("engine clock after event = %v, want 2", now)
	}
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired = %v, want [2]", fired)
	}
}

func TestWallClockScale(t *testing.T) {
	c := NewWallClock(1000) // 1000 virtual seconds per wall second
	v0, ok := c.Now()
	if !ok {
		t.Fatal("WallClock.Now reported no external time")
	}
	time.Sleep(20 * time.Millisecond)
	v1, _ := c.Now()
	elapsed := float64(v1 - v0)
	// 20ms wall at scale 1000 is 20 virtual seconds; allow generous slack
	// for scheduler jitter on loaded CI machines.
	if elapsed < 15 || elapsed > 2000 {
		t.Fatalf("virtual elapsed = %gs, want roughly 20s", elapsed)
	}
}

func TestWallClockWaitUntil(t *testing.T) {
	c := NewWallClock(1)
	c.anchor()

	// A virtual time already in the past returns immediately.
	if !c.WaitUntil(0, nil) {
		t.Error("WaitUntil(past) = false, want true")
	}

	// An early wake interrupts the sleep.
	wake := make(chan struct{}, 1)
	wake <- struct{}{}
	start := time.Now()
	if c.WaitUntil(Time(3600), wake) {
		t.Error("WaitUntil(future) with pending wake = true, want false")
	}
	if time.Since(start) > time.Second {
		t.Error("early wake took too long")
	}
}

func TestWallClockDefaultScale(t *testing.T) {
	for _, scale := range []float64{0, -2} {
		c := NewWallClock(scale)
		if c.scale != 1 {
			t.Errorf("NewWallClock(%g).scale = %g, want 1", scale, c.scale)
		}
	}
}

// A wall-clock Realtime loop advances the engine clock between events, so
// work injected while idle is stamped with the virtual arrival time, not
// the time of the last fired event.
func TestRealtimeWallClockStampsArrivals(t *testing.T) {
	e := NewEngine()
	c := NewWallClock(2000) // fast virtual time keeps the test quick
	r := NewRealtime(e, c)
	go r.Run()
	defer func() { r.Stop(); <-r.Done() }()

	time.Sleep(20 * time.Millisecond) // ~40 virtual seconds pass while idle
	var stamped Time
	done := make(chan struct{})
	r.Do(func() {
		stamped = e.Now()
		e.After(1, func() { close(done) })
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("scheduled event never fired")
	}
	if stamped <= 0 {
		t.Fatalf("injected work saw virtual time %v, want > 0", stamped)
	}
}
