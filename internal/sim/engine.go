// Package sim implements a deterministic discrete-event simulation kernel.
//
// All platform models in this repository (devices, networks, serverless
// platforms, edge clusters) are built on this kernel. The kernel keeps a
// virtual clock and a priority queue of pending events; callbacks scheduled
// for the same instant fire in scheduling order, which makes runs exactly
// reproducible.
//
// The kernel is allocation-free in steady state: fired and cancelled
// events return to a free list and are reused by later schedules, so a
// run's allocation count is bounded by its peak number of pending events,
// not by its total event count.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

// Seconds returns t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Seconds returns d as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Event is a pooled scheduled callback. Events are owned by the engine:
// once fired or cancelled, the object is recycled for a later schedule.
// External code never holds an *Event; it holds an EventRef, whose
// generation stamp keeps a recycled event from being confused with the
// schedule that originally produced it.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int    // position in the heap, -1 while pooled
	gen   uint64 // bumped on every recycle, invalidating old refs
}

// EventRef is a generation-checked handle to a scheduled event. The zero
// EventRef refers to nothing: Cancel on it is a no-op and Scheduled
// reports false. Refs are plain values — storing one never allocates.
type EventRef struct {
	ev  *Event
	gen uint64
}

// Scheduled reports whether the referenced event is still pending: not
// yet fired and not cancelled.
func (r EventRef) Scheduled() bool { return r.ev != nil && r.ev.gen == r.gen }

// Time returns the virtual time the event is scheduled for. The second
// return is false when the ref no longer refers to a pending event —
// fired, cancelled, or the zero ref. Callers must check it: a genuine
// event pending at t=0 is otherwise indistinguishable from a stale ref.
func (r EventRef) Time() (Time, bool) {
	if r.Scheduled() {
		return r.ev.at, true
	}
	return 0, false
}

// eventBlock is how many events one pool refill allocates. Block
// allocation keeps pool growth to one allocation per 256 new events while
// the pending set is still expanding toward its high-water mark.
const eventBlock = 256

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct engines with NewEngine.
//
// Engine is not safe for concurrent use: simulations are single-threaded by
// design so that runs are deterministic.
type Engine struct {
	now    Time
	queue  []*Event // binary min-heap ordered by (at, seq)
	free   []*Event // recycled events awaiting reuse
	seq    uint64
	fired  uint64
	halted bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired or
// cancelled.
func (e *Engine) Pending() int { return len(e.queue) }

func (e *Engine) alloc() *Event {
	if len(e.free) == 0 {
		blk := make([]Event, eventBlock)
		for i := range blk {
			blk[i].index = -1
			e.free = append(e.free, &blk[i])
		}
	}
	n := len(e.free) - 1
	ev := e.free[n]
	e.free[n] = nil
	e.free = e.free[:n]
	return ev
}

// recycle invalidates every outstanding ref to ev and returns it to the
// pool. The callback is dropped so the pool never pins closures.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.push(ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d Duration, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes the referenced event from the queue and recycles it.
// Cancelling an event that already fired or was already cancelled — or
// the zero EventRef — is a no-op: the generation check makes a stale ref
// harmless even after the event object has been reused.
func (e *Engine) Cancel(ref EventRef) {
	ev := ref.ev
	if ev == nil || ev.gen != ref.gen || ev.index < 0 {
		return
	}
	e.remove(ev.index)
	e.recycle(ev)
}

// Halt stops the current Run/RunUntil after the in-flight event completes.
func (e *Engine) Halt() { e.halted = true }

// Step fires the next pending event, advancing the clock to its time. It
// returns false if no events remain. The event is recycled before its
// callback runs, so a callback that schedules new work reuses the object
// immediately.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.popMin()
	e.now = ev.at
	e.fired++
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// Run fires events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil fires events with time <= t, then sets the clock to t. Events
// scheduled after t stay pending.
func (e *Engine) RunUntil(t Time) {
	e.halted = false
	for !e.halted && len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if !e.halted && e.now < t {
		e.now = t
	}
}

// NextEventTime returns the time of the earliest pending event, or +Inf if
// none are pending.
func (e *Engine) NextEventTime() Time {
	if len(e.queue) == 0 {
		return Time(math.Inf(1))
	}
	return e.queue[0].at
}

// The queue is a hand-rolled binary min-heap over (at, seq): same-instant
// events preserve scheduling order. Inlining the sift loops instead of
// going through container/heap removes an interface dispatch per
// comparison and the any-boxing on every push/pop.

func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.up(ev.index)
}

// up sifts the event at i toward the root until its parent is not larger.
func (e *Engine) up(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !less(ev, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
}

// down sifts the event at i toward the leaves until both children are not
// smaller.
func (e *Engine) down(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && less(q[r], q[c]) {
			c = r
		}
		if !less(q[c], ev) {
			break
		}
		q[i] = q[c]
		q[i].index = i
		i = c
	}
	q[i] = ev
	ev.index = i
}

// popMin removes and returns the earliest event.
func (e *Engine) popMin() *Event {
	q := e.queue
	ev := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	e.queue = q[:last]
	if last > 0 {
		e.queue[0].index = 0
		e.down(0)
	}
	ev.index = -1
	return ev
}

// remove deletes the event at heap position i.
func (e *Engine) remove(i int) {
	q := e.queue
	last := len(q) - 1
	ev := q[i]
	if i != last {
		moved := q[last]
		q[i] = moved
		moved.index = i
		q[last] = nil
		e.queue = q[:last]
		e.down(i)
		if moved.index == i {
			e.up(i)
		}
	} else {
		q[last] = nil
		e.queue = q[:last]
	}
	ev.index = -1
}
