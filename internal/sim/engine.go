// Package sim implements a deterministic discrete-event simulation kernel.
//
// All platform models in this repository (devices, networks, serverless
// platforms, edge clusters) are built on this kernel. The kernel keeps a
// virtual clock and a priority queue of pending events; callbacks scheduled
// for the same instant fire in scheduling order, which makes runs exactly
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

// Seconds returns t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Seconds returns d as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at      Time
	seq     uint64
	fn      func()
	index   int // heap index, -1 once removed
	removed bool
}

// Time returns the virtual time the event is scheduled for.
func (ev *Event) Time() Time { return ev.at }

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct engines with NewEngine.
//
// Engine is not safe for concurrent use: simulations are single-threaded by
// design so that runs are deterministic.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	halted bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired or
// cancelled.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes ev from the queue. Cancelling an event that already fired
// or was already cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.removed || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.removed = true
}

// Halt stops the current Run/RunUntil after the in-flight event completes.
func (e *Engine) Halt() { e.halted = true }

// Step fires the next pending event, advancing the clock to its time. It
// returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.removed = true
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run fires events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil fires events with time <= t, then sets the clock to t. Events
// scheduled after t stay pending.
func (e *Engine) RunUntil(t Time) {
	e.halted = false
	for !e.halted && len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if !e.halted && e.now < t {
		e.now = t
	}
}

// NextEventTime returns the time of the earliest pending event, or +Inf if
// none are pending.
func (e *Engine) NextEventTime() Time {
	if len(e.queue) == 0 {
		return Time(math.Inf(1))
	}
	return e.queue[0].at
}

// eventQueue is a min-heap of events ordered by (time, sequence) so that
// same-instant events preserve scheduling order.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
