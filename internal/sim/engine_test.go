package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Duration{5, 1, 3, 2, 4} {
		d := d
		e.After(d, func() { fired = append(fired, e.Now()) })
	}
	e.Run()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	e.After(2.5, func() {
		if e.Now() != 2.5 {
			t.Errorf("Now() = %v inside event, want 2.5", e.Now())
		}
		e.After(1.5, func() {
			if e.Now() != 4 {
				t.Errorf("Now() = %v inside nested event, want 4", e.Now())
			}
		})
	})
	e.Run()
	if e.Now() != 4 {
		t.Fatalf("final Now() = %v, want 4", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	NewEngine().After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling twice must be safe.
	e.Cancel(ev)
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var fired []int
	var events []*Event
	for i := 0; i < 5; i++ {
		i := i
		events = append(events, e.After(Duration(i+1), func() { fired = append(fired, i) }))
	}
	e.Cancel(events[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() { count++ })
	}
	e.RunUntil(5)
	if count != 5 {
		t.Fatalf("RunUntil(5) fired %d events, want 5", count)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %v after RunUntil(5)", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("Run fired %d total events, want 10", count)
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", e.Now())
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		e.At(Time(i), func() {
			count++
			if i == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Halt did not stop the run: fired %d", count)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("resume after Halt fired %d total, want 10", count)
	}
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if !math.IsInf(float64(e.NextEventTime()), 1) {
		t.Fatal("NextEventTime on empty queue should be +Inf")
	}
	e.At(7, func() {})
	if e.NextEventTime() != 7 {
		t.Fatalf("NextEventTime = %v, want 7", e.NextEventTime())
	}
}

func TestHeapOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.After(Duration(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		// Strict less: SliceIsSorted mis-reports duplicates when given a
		// less-or-equal comparator.
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFiredAndPendingCounts(t *testing.T) {
	e := NewEngine()
	for i := 1; i <= 4; i++ {
		e.At(Time(i), func() {})
	}
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", e.Pending())
	}
	e.RunUntil(2)
	if e.Fired() != 2 || e.Pending() != 2 {
		t.Fatalf("Fired=%d Pending=%d, want 2/2", e.Fired(), e.Pending())
	}
}
