package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Duration{5, 1, 3, 2, 4} {
		d := d
		e.After(d, func() { fired = append(fired, e.Now()) })
	}
	e.Run()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	e.After(2.5, func() {
		if e.Now() != 2.5 {
			t.Errorf("Now() = %v inside event, want 2.5", e.Now())
		}
		e.After(1.5, func() {
			if e.Now() != 4 {
				t.Errorf("Now() = %v inside nested event, want 4", e.Now())
			}
		})
	})
	e.Run()
	if e.Now() != 4 {
		t.Fatalf("final Now() = %v, want 4", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	NewEngine().After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling twice must be safe.
	e.Cancel(ev)
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var fired []int
	var events []EventRef
	for i := 0; i < 5; i++ {
		i := i
		events = append(events, e.After(Duration(i+1), func() { fired = append(fired, i) }))
	}
	e.Cancel(events[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() { count++ })
	}
	e.RunUntil(5)
	if count != 5 {
		t.Fatalf("RunUntil(5) fired %d events, want 5", count)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %v after RunUntil(5)", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("Run fired %d total events, want 10", count)
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", e.Now())
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		e.At(Time(i), func() {
			count++
			if i == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Halt did not stop the run: fired %d", count)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("resume after Halt fired %d total, want 10", count)
	}
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if !math.IsInf(float64(e.NextEventTime()), 1) {
		t.Fatal("NextEventTime on empty queue should be +Inf")
	}
	e.At(7, func() {})
	if e.NextEventTime() != 7 {
		t.Fatalf("NextEventTime = %v, want 7", e.NextEventTime())
	}
}

func TestHeapOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.After(Duration(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		// Strict less: SliceIsSorted mis-reports duplicates when given a
		// less-or-equal comparator.
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFiredAndPendingCounts(t *testing.T) {
	e := NewEngine()
	for i := 1; i <= 4; i++ {
		e.At(Time(i), func() {})
	}
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", e.Pending())
	}
	e.RunUntil(2)
	if e.Fired() != 2 || e.Pending() != 2 {
		t.Fatalf("Fired=%d Pending=%d, want 2/2", e.Fired(), e.Pending())
	}
}

// TestPooledEventReuse pins down the free-list contract: a cancelled
// event's object is reused by the next schedule, and the stale ref from
// the first schedule can neither cancel nor observe the new occupant.
func TestPooledEventReuse(t *testing.T) {
	e := NewEngine()
	firedA, firedB := false, false
	refA := e.After(1, func() { firedA = true })
	e.Cancel(refA)

	refB := e.After(2, func() { firedB = true })
	if refB.ev != refA.ev {
		t.Fatal("cancelled event was not reused by the next schedule")
	}
	if refA.Scheduled() {
		t.Fatal("stale ref reports Scheduled after its event was recycled")
	}
	// The stale ref must not be able to cancel the reused event.
	e.Cancel(refA)
	e.Run()
	if firedA {
		t.Fatal("cancelled callback fired")
	}
	if !firedB {
		t.Fatal("stale Cancel killed the event that reused the object")
	}
}

// TestFiredEventRefGoesStale proves a ref to a fired event is inert: it
// reports unscheduled and its Cancel cannot touch whatever schedule
// reuses the object.
func TestFiredEventRefGoesStale(t *testing.T) {
	e := NewEngine()
	ref := e.After(1, func() {})
	e.Run()
	if ref.Scheduled() {
		t.Fatal("ref still Scheduled after its event fired")
	}
	fired := false
	ref2 := e.After(1, func() { fired = true })
	if ref2.ev != ref.ev {
		t.Fatal("fired event was not recycled for the next schedule")
	}
	e.Cancel(ref) // stale: must be a no-op
	e.Run()
	if !fired {
		t.Fatal("stale Cancel of a fired ref killed the reused event")
	}
}

// TestZeroEventRef pins the zero value's behaviour: unscheduled, no
// time, Cancel is a no-op.
func TestZeroEventRef(t *testing.T) {
	var ref EventRef
	if ref.Scheduled() {
		t.Fatal("zero EventRef reports Scheduled")
	}
	if at, ok := ref.Time(); ok {
		t.Fatalf("zero EventRef Time = (%v, true), want ok=false", at)
	}
	NewEngine().Cancel(ref)
}

// TestRefTimeWhilePending covers EventRef.Time on a live event.
func TestRefTimeWhilePending(t *testing.T) {
	e := NewEngine()
	ref := e.After(3, func() {})
	if at, ok := ref.Time(); !ok || at != 3 {
		t.Fatalf("ref.Time() = (%v, %v), want (3, true)", at, ok)
	}
}

// TestRefTimeAtZeroDistinguishesStale is the regression test for the
// stale-ref ambiguity: an event genuinely pending at t=0 must report
// (0, true), and the same ref after Cancel must report ok=false — the
// old single-value Time() returned 0 in both cases, so a caller could
// not tell a live t=0 schedule from a dead ref.
func TestRefTimeAtZeroDistinguishesStale(t *testing.T) {
	e := NewEngine()
	ref := e.At(0, func() {})
	if at, ok := ref.Time(); !ok || at != 0 {
		t.Fatalf("pending t=0 event: Time() = (%v, %v), want (0, true)", at, ok)
	}
	e.Cancel(ref)
	if at, ok := ref.Time(); ok {
		t.Fatalf("cancelled t=0 event: Time() = (%v, true), want ok=false", at)
	}
	// A fired event's ref must go stale the same way.
	ref2 := e.At(0, func() {})
	e.Run()
	if at, ok := ref2.Time(); ok {
		t.Fatalf("fired t=0 event: Time() = (%v, true), want ok=false", at)
	}
}

// TestScheduleFireZeroAlloc asserts the kernel's steady-state contract:
// once the pool is warm, a schedule+fire cycle performs zero heap
// allocations.
func TestScheduleFireZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the pool and the heap's backing array.
	for i := 0; i < 512; i++ {
		e.After(1, fn)
		e.Step()
	}
	if got := testing.AllocsPerRun(200, func() {
		e.After(1, fn)
		e.Step()
	}); got != 0 {
		t.Fatalf("schedule+fire allocates %.1f times per op, want 0", got)
	}
}

// TestScheduleCancelZeroAlloc is the same contract for the cancel path.
func TestScheduleCancelZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 512; i++ {
		e.Cancel(e.After(1, fn))
	}
	if got := testing.AllocsPerRun(200, func() {
		e.Cancel(e.After(1, fn))
	}); got != 0 {
		t.Fatalf("schedule+cancel allocates %.1f times per op, want 0", got)
	}
}

// TestCancelStressAgainstModel drives random schedule/cancel/step
// sequences and checks the surviving callbacks fire in exactly the order
// a sorted reference model predicts.
func TestCancelStressAgainstModel(t *testing.T) {
	// Deterministic xorshift so failures reproduce.
	state := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	e := NewEngine()
	type scheduled struct {
		id  int
		at  Time
		ref EventRef
	}
	var live []scheduled
	var fired []int
	want := map[int]Time{}
	id := 0
	for round := 0; round < 5000; round++ {
		switch next(3) {
		case 0, 1: // schedule
			id++
			at := e.Now().Add(Duration(next(50)) / 10)
			me := id
			ref := e.At(at, func() { fired = append(fired, me) })
			live = append(live, scheduled{id: me, at: at, ref: ref})
			want[me] = at
		case 2: // cancel a random ref (may be stale after firing: must be safe)
			if len(live) > 0 {
				i := next(len(live))
				if live[i].ref.Scheduled() {
					// A live schedule: cancelling it removes it from the
					// expected firing set.
					delete(want, live[i].id)
				}
				e.Cancel(live[i].ref)
				live = append(live[:i], live[i+1:]...)
			}
		}
		if next(4) == 0 {
			e.Step()
		}
	}
	e.Run()
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	seen := map[int]bool{}
	last := Time(-1)
	for _, f := range fired {
		at, ok := want[f]
		if !ok || seen[f] {
			t.Fatalf("event %d fired but was cancelled or duplicated", f)
		}
		seen[f] = true
		if at < last {
			t.Fatalf("event %d fired at %v after an event at %v", f, at, last)
		}
		last = at
	}
}
