package sim

import "fmt"

// Resource models a pool of identical servers with a FIFO wait queue: a
// device CPU is a Resource with capacity 1, an edge cluster with eight
// worker cores is a Resource with capacity 8.
//
// Callers request a unit with Acquire and get a callback when one is
// granted; they must call Release exactly once per grant.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiting  []*request

	// Aggregate statistics, maintained incrementally so that utilisation
	// can be computed without a trace.
	busyTime   Duration
	lastChange Time
	grants     uint64
	queuedTime Duration
}

type request struct {
	fn        func()
	enqueued  Time
	cancelled bool
}

// Pending is a handle to a queued Acquire that has not been granted yet.
type Pending struct {
	r   *Resource
	req *request
}

// Cancel withdraws the queued request. Cancelling after the grant fired is
// a no-op.
func (p *Pending) Cancel() {
	if p == nil || p.req == nil {
		return
	}
	p.req.cancelled = true
}

// NewResource returns a resource with the given capacity attached to eng.
// It panics if capacity is not positive.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q with capacity %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Name returns the resource's name, used in traces and error messages.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of units in the pool.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently granted.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of requests waiting for a unit.
func (r *Resource) QueueLen() int {
	n := 0
	for _, req := range r.waiting {
		if !req.cancelled {
			n++
		}
	}
	return n
}

// Acquire requests one unit. If a unit is free, fn runs via a zero-delay
// event (so the caller's stack unwinds first); otherwise the request
// queues FIFO. The returned Pending can cancel a queued request.
func (r *Resource) Acquire(fn func()) *Pending {
	if fn == nil {
		panic("sim: Acquire with nil callback")
	}
	req := &request{fn: fn, enqueued: r.eng.Now()}
	if r.inUse < r.capacity {
		r.grant(req)
		return &Pending{r: r, req: req}
	}
	r.waiting = append(r.waiting, req)
	return &Pending{r: r, req: req}
}

// Release returns one unit to the pool and grants it to the head of the
// wait queue, if any. It panics if no units are in use.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: Release on idle resource %q", r.name))
	}
	r.accumulate()
	r.inUse--
	for len(r.waiting) > 0 {
		req := r.waiting[0]
		r.waiting = r.waiting[1:]
		if req.cancelled {
			continue
		}
		r.queuedTime += r.eng.Now().Sub(req.enqueued)
		r.grant(req)
		return
	}
}

func (r *Resource) grant(req *request) {
	r.accumulate()
	r.inUse++
	r.grants++
	r.eng.After(0, func() {
		if req.cancelled {
			// The holder cancelled between grant and dispatch; return the
			// unit rather than leak it.
			r.Release()
			return
		}
		req.fn()
	})
}

func (r *Resource) accumulate() {
	now := r.eng.Now()
	r.busyTime += Duration(float64(r.inUse) * float64(now.Sub(r.lastChange)))
	r.lastChange = now
}

// Utilization returns the time-averaged fraction of capacity in use since
// the start of the simulation. It returns 0 before any time has passed.
func (r *Resource) Utilization() float64 {
	r.accumulate()
	elapsed := float64(r.eng.Now())
	if elapsed == 0 {
		return 0
	}
	return float64(r.busyTime) / (elapsed * float64(r.capacity))
}

// Grants returns how many requests have been granted.
func (r *Resource) Grants() uint64 { return r.grants }

// MeanQueueWait returns the average time granted requests spent queued.
func (r *Resource) MeanQueueWait() Duration {
	if r.grants == 0 {
		return 0
	}
	return Duration(float64(r.queuedTime) / float64(r.grants))
}
