package sim

import (
	"testing"
)

// holdFor acquires r, holds it for d, then releases.
func holdFor(e *Engine, r *Resource, d Duration, done func()) {
	r.Acquire(func() {
		e.After(d, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}

func TestResourceSerializesSingleServer(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		holdFor(e, r, 10, func() { finish = append(finish, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30}
	if len(finish) != 3 {
		t.Fatalf("completions = %v", finish)
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("completions = %v, want %v", finish, want)
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cluster", 3)
	var finish []Time
	for i := 0; i < 6; i++ {
		holdFor(e, r, 10, func() { finish = append(finish, e.Now()) })
	}
	e.Run()
	// Three run in [0,10], three in [10,20].
	if len(finish) != 6 {
		t.Fatalf("got %d completions", len(finish))
	}
	for i := 0; i < 3; i++ {
		if finish[i] != 10 {
			t.Fatalf("first wave completion %d at %v, want 10", i, finish[i])
		}
	}
	for i := 3; i < 6; i++ {
		if finish[i] != 20 {
			t.Fatalf("second wave completion %d at %v, want 20", i, finish[i])
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Acquire(func() {
			order = append(order, i)
			e.After(1, r.Release)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("grants out of FIFO order: %v", order)
		}
	}
}

func TestResourceCancelQueued(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	granted := map[int]bool{}
	holdFor(e, r, 10, nil)
	var pendings []*Pending
	for i := 0; i < 3; i++ {
		i := i
		p := r.Acquire(func() {
			granted[i] = true
			e.After(1, r.Release)
		})
		pendings = append(pendings, p)
	}
	pendings[1].Cancel()
	e.Run()
	if !granted[0] || granted[1] || !granted[2] {
		t.Fatalf("granted = %v, want 0 and 2 only", granted)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	holdFor(e, r, 10, nil)
	e.RunUntil(20)
	u := r.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("Utilization = %g, want ~0.5", u)
	}
}

func TestResourceMeanQueueWait(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	holdFor(e, r, 10, nil)
	holdFor(e, r, 10, nil) // waits 10
	e.Run()
	mqw := float64(r.MeanQueueWait())
	if mqw < 4.9 || mqw > 5.1 { // (0 + 10) / 2 grants
		t.Fatalf("MeanQueueWait = %g, want ~5", mqw)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release on idle resource did not panic")
		}
	}()
	r.Release()
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewResource(0) did not panic")
		}
	}()
	NewResource(NewEngine(), "bad", 0)
}

func TestQueueLenAndInUse(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 2)
	for i := 0; i < 5; i++ {
		holdFor(e, r, 10, nil)
	}
	e.RunUntil(1)
	if r.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", r.InUse())
	}
	if r.QueueLen() != 3 {
		t.Fatalf("QueueLen = %d, want 3", r.QueueLen())
	}
	e.Run()
	if r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatalf("resource not drained: inUse=%d queue=%d", r.InUse(), r.QueueLen())
	}
}
