package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// ShardedEngine runs one simulation across N shard engines plus a hub
// engine, synchronized by a conservative time barrier. Each shard owns a
// disjoint set of simulation entities (in this repository: UEs — their
// devices, network paths and schedulers); the hub owns every shared
// substrate (serverless platform, edge cluster, VM fleet). Time advances
// in lockstep epochs of a fixed interval:
//
//	epoch e:
//	  phase A  every shard runs its events in (e·Δ, (e+1)·Δ] — shard
//	           phases may run on parallel goroutines, because shards
//	           never touch each other's state. Calls against hub-owned
//	           substrates are buffered via SendToHub, not executed.
//	  barrier  buffered shard→hub messages are sorted into the canonical
//	           (time, key, seq) order and injected into the hub's queue.
//	  phase B  the hub runs its events in (e·Δ, (e+1)·Δ] serially.
//	           Replies to shards (SendToShard) are buffered and delivered
//	           at the start of the next epoch's phase A, in hub order.
//
// Determinism at any shard count — including N=1 — follows from three
// properties. First, every result-affecting random stream is keyed to an
// entity (a UE), never to a shard, so partitioning cannot move draws
// between streams. Second, the canonical barrier order depends only on
// (send time, entity key, per-sender send order), all of which are
// independent of which shard an entity landed on. Third, shards read
// hub-owned state only while the hub is quiescent (phase A), so every
// shard observes the same barrier-frozen snapshot regardless of shard
// count or goroutine interleaving. See DESIGN.md for the full argument.
//
// The one semantic relaxation versus a single serial engine: a reply
// crossing hub→shard becomes visible at the next epoch boundary, so
// cross-engine feedback latency is quantized up to one interval. The
// relaxation is identical at every shard count.
type ShardedEngine struct {
	hub      *Engine
	shards   []*Engine
	interval Duration

	epoch   uint64 // index of the epoch currently (or next) being run
	windows uint64 // epoch windows actually executed (idle epochs are skipped)

	outbox [][]hubMsg   // per-shard shard→hub buffers, filled in phase A
	outSeq []uint64     // per-shard send counters, monotone over the run
	inbox  [][]shardMsg // per-shard hub→shard buffers, filled in phase B
	merged []hubMsg     // barrier scratch: canonical sort happens here
}

// hubMsg is one buffered shard→hub submission.
type hubMsg struct {
	at    Time   // shard clock at send time
	key   uint64 // canonical entity key (shard-count-independent)
	seq   uint64 // per-shard send counter: orders same-(at,key) sends
	shard int    // sender; last-resort tiebreak, see merge
	fn    func()
}

// shardMsg is one buffered hub→shard reply, delivered in hub send order.
type shardMsg struct {
	fn func()
}

// NewSharded returns a sharded engine with n shard engines and the given
// barrier interval. It panics if n < 1 or interval <= 0.
func NewSharded(n int, interval Duration) *ShardedEngine {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewSharded with %d shards", n))
	}
	if interval <= 0 {
		panic(fmt.Sprintf("sim: NewSharded with interval %v", interval))
	}
	se := &ShardedEngine{
		hub:      NewEngine(),
		shards:   make([]*Engine, n),
		interval: interval,
		outbox:   make([][]hubMsg, n),
		outSeq:   make([]uint64, n),
		inbox:    make([][]shardMsg, n),
	}
	for i := range se.shards {
		se.shards[i] = NewEngine()
	}
	return se
}

// Hub returns the engine that owns the shared substrates.
func (se *ShardedEngine) Hub() *Engine { return se.hub }

// Shard returns shard i's engine.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Interval returns the barrier interval.
func (se *ShardedEngine) Interval() Duration { return se.interval }

// Epoch returns the index of the next epoch to run; after Run it is one
// past the last executed epoch. Idle-skipped epochs count, so this can
// be much larger than Windows.
func (se *ShardedEngine) Epoch() uint64 { return se.epoch }

// Windows returns how many epoch windows were actually executed; idle
// stretches the skip optimization jumped over are excluded.
func (se *ShardedEngine) Windows() uint64 { return se.windows }

// SendToHub buffers fn for execution on the hub engine at the sending
// shard's current time. Call it only from shard-side code during phase A.
// key must identify the owning entity (the UE index here) and an entity
// must live on exactly one shard: the barrier delivers buffered messages
// in (time, key, send order) — an order independent of the entity→shard
// assignment — before the hub runs the epoch's window.
func (se *ShardedEngine) SendToHub(shard int, key uint64, fn func()) {
	if fn == nil {
		panic("sim: SendToHub with nil callback")
	}
	se.outSeq[shard]++
	se.outbox[shard] = append(se.outbox[shard], hubMsg{
		at:    se.shards[shard].Now(),
		key:   key,
		seq:   se.outSeq[shard],
		shard: shard,
		fn:    fn,
	})
}

// SendToShard buffers fn for delivery to the shard at the start of the
// next epoch. Call it only from hub-side code during phase B; delivery
// preserves hub send order, and fn runs with the shard's clock at the
// epoch boundary (it may schedule further shard events).
func (se *ShardedEngine) SendToShard(shard int, fn func()) {
	if fn == nil {
		panic("sim: SendToShard with nil callback")
	}
	se.inbox[shard] = append(se.inbox[shard], shardMsg{fn: fn})
}

// epochEnd returns the closing boundary of the current epoch.
func (se *ShardedEngine) epochEnd() Time {
	return Time(float64(se.epoch+1) * float64(se.interval))
}

// anyMail reports whether any cross-engine message is waiting.
func (se *ShardedEngine) anyMail() bool {
	for _, b := range se.inbox {
		if len(b) > 0 {
			return true
		}
	}
	for _, b := range se.outbox {
		if len(b) > 0 {
			return true
		}
	}
	return false
}

// nextEventTime returns the earliest pending event across every engine,
// or +Inf when all queues are drained.
func (se *ShardedEngine) nextEventTime() Time {
	next := se.hub.NextEventTime()
	for _, s := range se.shards {
		if t := s.NextEventTime(); t < next {
			next = t
		}
	}
	return next
}

// Run drives the simulation until every engine's queue is drained and no
// cross-engine messages remain buffered. Epochs with no events anywhere
// are skipped in one jump, so sparse simulations don't pay per-epoch
// overhead for idle time; the skip decision depends only on the global
// earliest event, which is the same at every shard count.
func (se *ShardedEngine) Run() {
	for {
		if !se.anyMail() {
			next := se.nextEventTime()
			if math.IsInf(float64(next), 1) {
				return
			}
			if k := se.epochOf(next); k > se.epoch {
				se.epoch = k
			}
		}
		end := se.epochEnd()
		se.runShards(end)
		se.flushToHub()
		se.hub.RunUntil(end)
		se.epoch++
		se.windows++
	}
}

// epochOf returns the epoch whose window (k·Δ, (k+1)·Δ] contains t.
func (se *ShardedEngine) epochOf(t Time) uint64 {
	k := float64(t) / float64(se.interval)
	if k <= 0 {
		return 0
	}
	if k >= math.MaxUint64/2 {
		// Events absurdly far in the future: advance epoch-by-epoch rather
		// than overflow the conversion.
		return se.epoch
	}
	e := uint64(k)
	// An event exactly on boundary e·Δ belongs to the window ending there.
	if float64(e) == k && e > 0 {
		e--
	}
	return e
}

// runShards delivers each shard's buffered hub replies and runs its
// window up to end. With more than one shard the phases run on parallel
// goroutines; shard state is disjoint and hub state is frozen, so the
// interleaving cannot affect results.
func (se *ShardedEngine) runShards(end Time) {
	if len(se.shards) == 1 {
		se.runShard(0, end)
		return
	}
	var wg sync.WaitGroup
	for i := range se.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			se.runShard(i, end)
		}(i)
	}
	wg.Wait()
}

func (se *ShardedEngine) runShard(i int, end Time) {
	msgs := se.inbox[i]
	for _, m := range msgs {
		m.fn()
	}
	for j := range msgs {
		msgs[j] = shardMsg{} // release delivered closures
	}
	se.inbox[i] = msgs[:0]
	se.shards[i].RunUntil(end)
}

// flushToHub is the barrier: it merges every shard's outbox into the
// canonical (time, key, seq) order and injects the messages into the
// hub's queue. Injection order becomes hub heap order for same-instant
// events, so the canonical order is exactly the hub's execution order.
func (se *ShardedEngine) flushToHub() {
	merged := se.merged[:0]
	for i := range se.outbox {
		merged = append(merged, se.outbox[i]...)
		box := se.outbox[i]
		for j := range box {
			box[j] = hubMsg{} // release transferred closures
		}
		se.outbox[i] = box[:0]
	}
	if len(merged) == 0 {
		se.merged = merged
		return
	}
	sort.Slice(merged, func(a, b int) bool {
		x, y := &merged[a], &merged[b]
		if x.at != y.at {
			return x.at < y.at
		}
		if x.key != y.key {
			return x.key < y.key
		}
		if x.seq != y.seq {
			return x.seq < y.seq
		}
		// Unreachable when keys are single-owner (one shard's seq is
		// strictly monotone); kept so the order is total regardless.
		return x.shard < y.shard
	})
	for i := range merged {
		se.hub.At(merged[i].at, merged[i].fn)
	}
	for i := range merged {
		merged[i] = hubMsg{}
	}
	se.merged = merged[:0]
}
