package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// topologyLog runs one synthetic multi-entity topology on a ShardedEngine
// with the given shard count and returns a canonical textual log: every
// entity's fire/reply history in entity order, then the hub's execution
// history. The topology depends only on (entities, seed), never on the
// shard count, so the returned string must be byte-identical for every
// shard count — that is the determinism contract under test.
//
// Each entity runs a chain of events driven by its own xorshift stream
// (keyed by entity index, not shard). Steps either fire locally, or
// round-trip through the hub: the hub logs the canonical arrival, models
// a service delay on its own engine, and replies; the entity resumes its
// chain when the reply is delivered at an epoch boundary.
func topologyLog(shards, entities int, seed uint64, interval Duration) string {
	se := NewSharded(shards, interval)
	logs := make([][]string, entities)
	var hubLog []string

	for k := 0; k < entities; k++ {
		k := k
		home := k % shards
		eng := se.Shard(home)
		state := seed ^ (uint64(k)+1)*0x9E3779B97F4A7C15
		next := func(n uint64) uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state % n
		}
		steps := int(3 + next(5))
		var step func()
		step = func() {
			logs[k] = append(logs[k], fmt.Sprintf("e%d fire@%.6f", k, eng.Now()))
			if steps == 0 {
				return
			}
			steps--
			delay := Duration(0.05 + float64(next(100))/40)
			switch next(3) {
			case 0: // local hop
				eng.After(delay, step)
			default: // round-trip through the hub
				svc := Duration(0.01 + float64(next(50))/100)
				eng.After(delay, func() {
					logs[k] = append(logs[k], fmt.Sprintf("e%d send@%.6f", k, eng.Now()))
					se.SendToHub(home, uint64(k), func() {
						hub := se.Hub()
						hubLog = append(hubLog, fmt.Sprintf("hub e%d arrive@%.6f", k, hub.Now()))
						hub.After(svc, func() {
							hubLog = append(hubLog, fmt.Sprintf("hub e%d done@%.6f", k, hub.Now()))
							se.SendToShard(home, func() {
								logs[k] = append(logs[k], fmt.Sprintf("e%d reply@%.6f", k, eng.Now()))
								step()
							})
						})
					})
				})
			}
		}
		eng.At(Time(0.1+float64(k%13)*0.37), step)
	}

	se.Run()
	var b strings.Builder
	for k := range logs {
		for _, l := range logs[k] {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	for _, l := range hubLog {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestShardedDeterministicAcrossShardCounts is the core contract: the
// same topology produces byte-identical logs at 1, 2, 4 and 7 shards.
func TestShardedDeterministicAcrossShardCounts(t *testing.T) {
	for _, tc := range []struct {
		entities int
		seed     uint64
		interval Duration
	}{
		{1, 1, 0.5},
		{5, 2, 0.5},
		{23, 3, 0.25},
		{40, 4, 1.0},
	} {
		want := topologyLog(1, tc.entities, tc.seed, tc.interval)
		if want == "" {
			t.Fatalf("entities=%d: empty log", tc.entities)
		}
		for _, shards := range []int{2, 4, 7} {
			got := topologyLog(shards, tc.entities, tc.seed, tc.interval)
			if got != want {
				t.Fatalf("entities=%d seed=%d: %d-shard log differs from 1-shard log:\n--- 1 shard ---\n%s\n--- %d shards ---\n%s",
					tc.entities, tc.seed, shards, want, shards, got)
			}
		}
	}
}

// TestShardedHubOrderCanonical pins the barrier's delivery order: two
// entities on different shards sending at the same instant must reach
// the hub in key order, whatever the shard layout.
func TestShardedHubOrderCanonical(t *testing.T) {
	for _, shards := range []int{1, 2, 3} {
		se := NewSharded(shards, 1)
		var order []int
		// Reverse entity order so a naive shard-order flush would deliver
		// 2 before 1 when they land on different shards.
		for _, k := range []int{2, 1, 0} {
			k := k
			home := k % shards
			se.Shard(home).At(0.5, func() {
				se.SendToHub(home, uint64(k), func() {
					order = append(order, k)
				})
			})
		}
		se.Run()
		if fmt.Sprint(order) != "[0 1 2]" {
			t.Fatalf("shards=%d: hub delivery order %v, want [0 1 2]", shards, order)
		}
	}
}

// TestShardedReplyQuantizedToBoundary pins the documented relaxation:
// a hub reply becomes visible on the shard at the next epoch boundary
// after the hub-side completion.
func TestShardedReplyQuantizedToBoundary(t *testing.T) {
	se := NewSharded(2, 1) // interval 1s
	var replyAt Time
	se.Shard(0).At(0.25, func() {
		se.SendToHub(0, 7, func() {
			se.Hub().After(0.5, func() { // completes at t=0.75, inside epoch 0
				se.SendToShard(0, func() {
					replyAt = se.Shard(0).Now()
				})
			})
		})
	})
	se.Run()
	if replyAt != 1 {
		t.Fatalf("reply delivered at t=%v, want the epoch boundary t=1", replyAt)
	}
}

// TestShardedIdleSkip proves sparse simulations don't pay per-epoch cost
// for dead time: one event far in the future still fires exactly, with
// epoch count proportional to busy epochs, not elapsed time.
func TestShardedIdleSkip(t *testing.T) {
	se := NewSharded(4, 0.5)
	var fired Time
	se.Shard(2).At(100000.25, func() { fired = se.Shard(2).Now() })
	se.Run()
	if fired != 100000.25 {
		t.Fatalf("event fired at %v, want 100000.25", fired)
	}
	if se.Windows() > 2 {
		t.Fatalf("idle skip did not engage: %d windows executed for one sparse event", se.Windows())
	}
	if se.Epoch() != 200001 {
		t.Fatalf("Epoch() = %d, want the absolute index 200001", se.Epoch())
	}
}

// TestShardedBoundaryEvent pins the window convention: an event exactly
// on an epoch boundary belongs to the window that closes there.
func TestShardedBoundaryEvent(t *testing.T) {
	se := NewSharded(2, 1)
	var hubAt Time
	se.Shard(0).At(1, func() { // exactly on the epoch-0 boundary
		se.SendToHub(0, 1, func() { hubAt = se.Hub().Now() })
	})
	se.Run()
	if hubAt != 1 {
		t.Fatalf("boundary event reached the hub at %v, want 1", hubAt)
	}
	if se.Epoch() != 1 {
		t.Fatalf("boundary event consumed %d epochs, want 1", se.Epoch())
	}
}

// TestShardedDrainsEverything: after Run returns, every engine is empty
// and no mail is buffered.
func TestShardedDrainsEverything(t *testing.T) {
	se := NewSharded(3, 0.5)
	// Per-entity completion flags: replies are delivered on shard
	// goroutines, so the test must not share a counter across shards.
	done := make([]bool, 9)
	for k := 0; k < 9; k++ {
		k := k
		home := k % 3
		se.Shard(home).At(Time(k)*0.3, func() {
			se.SendToHub(home, uint64(k), func() {
				se.SendToShard(home, func() { done[k] = true })
			})
		})
	}
	se.Run()
	for k, ok := range done {
		if !ok {
			t.Fatalf("round trip %d did not complete", k)
		}
	}
	if se.Hub().Pending() != 0 {
		t.Fatalf("hub still has %d pending events", se.Hub().Pending())
	}
	for i := 0; i < se.NumShards(); i++ {
		if se.Shard(i).Pending() != 0 {
			t.Fatalf("shard %d still has %d pending events", i, se.Shard(i).Pending())
		}
	}
	if se.anyMail() {
		t.Fatal("mail still buffered after Run")
	}
}

// TestShardedConstructorPanics pins the argument contract.
func TestShardedConstructorPanics(t *testing.T) {
	for _, tc := range []struct {
		n        int
		interval Duration
	}{{0, 1}, {-1, 1}, {1, 0}, {1, -0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSharded(%d, %v) did not panic", tc.n, tc.interval)
				}
			}()
			NewSharded(tc.n, tc.interval)
		}()
	}
	se := NewSharded(1, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SendToHub(nil) did not panic")
			}
		}()
		se.SendToHub(0, 0, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SendToShard(nil) did not panic")
			}
		}()
		se.SendToShard(0, nil)
	}()
}

// TestShardedEpochOf pins the window arithmetic, including the exact
// boundary case and t=0.
func TestShardedEpochOf(t *testing.T) {
	se := NewSharded(1, 0.5)
	for _, tc := range []struct {
		t    Time
		want uint64
	}{{0, 0}, {0.25, 0}, {0.5, 0}, {0.50001, 1}, {1, 1}, {1.25, 2}, {100000.25, 200000}} {
		if got := se.epochOf(tc.t); got != tc.want {
			t.Errorf("epochOf(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
	if !math.IsInf(float64(NewSharded(2, 1).nextEventTime().Seconds()), 1) {
		t.Error("nextEventTime on empty engines should be +Inf")
	}
}

// FuzzShardBarrier drives a byte-steered topology through 1, 2, 4 and 7
// shards and requires byte-identical logs — the conservative barrier's
// canonical order, reply quantization and idle skip must all be
// shard-count-invariant for arbitrary event/send patterns.
func FuzzShardBarrier(f *testing.F) {
	f.Add(uint64(1), uint8(3), false)
	f.Add(uint64(42), uint8(17), true)
	f.Add(uint64(0xDEAD), uint8(40), false)
	f.Fuzz(func(t *testing.T, seed uint64, entities uint8, fine bool) {
		n := int(entities%40) + 1
		interval := Duration(0.5)
		if fine {
			interval = 0.125
		}
		want := topologyLog(1, n, seed, interval)
		for _, shards := range []int{2, 4, 7} {
			if got := topologyLog(shards, n, seed, interval); got != want {
				t.Fatalf("seed=%d entities=%d: %d-shard log diverged from serial", seed, n, shards)
			}
		}
	})
}

// BenchmarkShardedEngine measures the cost of one cross-shard round trip
// (shard event → barrier → hub event → reply delivery) at a typical
// fan-in: 64 entities per shard ping-ponging against the hub. The metric
// tracks how barrier overhead scales with shard count.
func BenchmarkShardedEngine(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const perShard = 64
			se := NewSharded(shards, 1)
			// Fixed per-entity hop counts: shard goroutines must not share
			// counters, so the total work is partitioned up front.
			hopsPer := b.N/(shards*perShard) + 1
			for s := 0; s < shards; s++ {
				for e := 0; e < perShard; e++ {
					s, e := s, e
					key := uint64(s*perShard + e)
					eng := se.Shard(s)
					left := hopsPer
					var hop func()
					hop = func() {
						if left == 0 {
							return
						}
						left--
						se.SendToHub(s, key, func() {
							se.SendToShard(s, func() {
								eng.After(0.5, hop)
							})
						})
					}
					eng.At(Time(float64(e)*0.01), hop)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			se.Run()
		})
	}
}
