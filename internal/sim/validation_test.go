package sim

// Queueing-theory validation: the kernel's emergent behaviour must match
// closed-form results. These tests are the strongest evidence that the
// simulator's clock, queues and resources are wired correctly — any
// bookkeeping error shows up as a violation of Little's law or the
// Pollaczek–Khinchine mean.

import (
	"math"
	"testing"

	"offload/internal/rng"
)

// TestMD1QueueMatchesPollaczekKhinchine drives an M/D/1 queue (Poisson
// arrivals, deterministic service, one server) and compares the measured
// mean wait against Wq = ρ·S / (2(1−ρ)).
func TestMD1QueueMatchesPollaczekKhinchine(t *testing.T) {
	const (
		lambda  = 0.7 // arrivals per second
		service = 1.0 // seconds
		rho     = lambda * service
		n       = 60000
	)
	eng := NewEngine()
	r := NewResource(eng, "server", 1)
	src := rng.New(42)

	var arrive func()
	remaining := n
	arrive = func() {
		r.Acquire(func() {
			eng.After(Duration(service), r.Release)
		})
		remaining--
		if remaining > 0 {
			eng.After(Duration(src.Exp(lambda)), arrive)
		}
	}
	eng.After(Duration(src.Exp(lambda)), arrive)
	eng.Run()

	want := rho * service / (2 * (1 - rho)) // ≈ 1.1667 s
	got := float64(r.MeanQueueWait())
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("M/D/1 mean wait = %.4f s, Pollaczek–Khinchine predicts %.4f s", got, want)
	}
}

// TestMM1QueueMatchesTheory repeats the check for exponential service:
// Wq = ρ/(μ−λ).
func TestMM1QueueMatchesTheory(t *testing.T) {
	const (
		lambda = 0.6
		mu     = 1.0
		n      = 60000
	)
	eng := NewEngine()
	r := NewResource(eng, "server", 1)
	src := rng.New(7)

	var arrive func()
	remaining := n
	arrive = func() {
		r.Acquire(func() {
			eng.After(Duration(src.Exp(mu)), r.Release)
		})
		remaining--
		if remaining > 0 {
			eng.After(Duration(src.Exp(lambda)), arrive)
		}
	}
	eng.After(Duration(src.Exp(lambda)), arrive)
	eng.Run()

	rho := lambda / mu
	want := rho / (mu - lambda) // = 1.5 s
	got := float64(r.MeanQueueWait())
	if math.Abs(got-want)/want > 0.07 {
		t.Fatalf("M/M/1 mean wait = %.4f s, theory predicts %.4f s", got, want)
	}
}

// TestLittlesLawOnInfiniteServer checks L = λ·W on an M/D/∞ system: the
// time-averaged number in service must equal arrival rate times service
// time.
func TestLittlesLawOnInfiniteServer(t *testing.T) {
	const (
		lambda  = 2.0
		service = 3.0
		n       = 40000
	)
	eng := NewEngine()
	// "Infinite" servers: capacity far above the offered load.
	r := NewResource(eng, "pool", 1000)
	src := rng.New(9)

	var arrive func()
	remaining := n
	arrive = func() {
		r.Acquire(func() {
			eng.After(Duration(service), r.Release)
		})
		remaining--
		if remaining > 0 {
			eng.After(Duration(src.Exp(lambda)), arrive)
		}
	}
	eng.After(Duration(src.Exp(lambda)), arrive)
	eng.Run()

	// Utilization × capacity = time-averaged jobs in service = λ·S.
	got := r.Utilization() * float64(r.Capacity())
	want := lambda * service
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("Little's law: L = %.3f, λW = %.3f", got, want)
	}
}
