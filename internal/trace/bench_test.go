package trace

import (
	"testing"

	"offload/internal/model"
	"offload/internal/sim"
)

// benchOutcome builds the outcome fixture the span benchmarks replay: one
// clean remote win with every phase populated, the shape of the vast
// majority of spans in a healthy run.
func benchOutcome(task *model.Task, at sim.Time) model.Outcome {
	return model.Outcome{
		Task:       task,
		Placement:  model.PlaceFunction,
		Started:    at,
		Finished:   at + 2,
		UplinkTime: 0.25, DownlinkTime: 0.05,
		Exec: model.ExecReport{
			Start: at + 0.25, End: at + 1.95,
			QueueWait: 0.1, ColdStart: 0.2,
		},
		CostUSD:  1e-5,
		Attempts: 1,
	}
}

// BenchmarkSpanRecord measures the steady-state recording cycle for one
// task: attempt start, attempt end (with phase synthesis), task done.
// This is the per-task overhead of running with spans enabled.
func BenchmarkSpanRecord(b *testing.B) {
	r := NewSpanRecorder()
	task := &model.Task{ID: 1, App: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.ID = model.TaskID(i + 1)
		at := sim.Time(float64(i))
		id := r.AttemptStart(task, model.PlaceFunction, false, at)
		o := benchOutcome(task, at)
		r.AttemptEnd(id, o, StatusWin, at+2)
		r.TaskDone(o, at+2)
	}
}

// BenchmarkSpanRecordBounded is the same cycle with a bounded recorder:
// retained spans plateau, so this measures the flat-memory steady state a
// million-task run would see. Unlike the unbounded variant it does not
// slow down with b.N, which makes it the stable regression gate.
func BenchmarkSpanRecordBounded(b *testing.B) {
	r := NewSpanRecorder()
	r.Bound(4096)
	task := &model.Task{ID: 1, App: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.ID = model.TaskID(i + 1)
		at := sim.Time(float64(i))
		id := r.AttemptStart(task, model.PlaceFunction, false, at)
		o := benchOutcome(task, at)
		r.AttemptEnd(id, o, StatusWin, at+2)
		r.TaskDone(o, at+2)
	}
}
