package trace

import (
	"testing"

	"offload/internal/model"
	"offload/internal/sim"
)

var recordScratch = &model.Task{App: "bench"}

// recordTask replays one clean task lifecycle through the recorder. The
// task fixture is shared scratch so the replay itself allocates nothing.
func recordTask(r *SpanRecorder, i int) {
	task := recordScratch
	task.ID = model.TaskID(i + 1)
	at := sim.Time(float64(i))
	id := r.AttemptStart(task, model.PlaceFunction, false, at)
	o := benchOutcome(task, at)
	r.AttemptEnd(id, o, StatusWin, at+2)
	r.TaskDone(o, at+2)
}

// TestSpanRecordSteadyStateAlloc pins the recorder's hot-path contract:
// with a bounded recorder warmed past its first compactions, recording a
// task (attempt start + end with phase synthesis + task done) performs
// zero heap allocations.
func TestSpanRecordSteadyStateAlloc(t *testing.T) {
	r := NewSpanRecorder()
	r.Bound(256)
	n := 0
	for ; n < 4096; n++ {
		recordTask(r, n)
	}
	if got := testing.AllocsPerRun(500, func() {
		recordTask(r, n)
		n++
	}); got != 0 {
		t.Fatalf("steady-state span recording allocates %.1f times per task, want 0", got)
	}
}

// TestBoundedRecorderCompacts checks the bound holds and casualties are
// counted: retained spans plateau at ~2x the limit while Dropped grows.
func TestBoundedRecorderCompacts(t *testing.T) {
	r := NewSpanRecorder()
	r.Bound(64)
	const tasks = 500
	for i := 0; i < tasks; i++ {
		recordTask(r, i)
	}
	if r.Len() > 2*64 {
		t.Fatalf("bounded recorder retains %d spans, want <= %d", r.Len(), 2*64)
	}
	total := uint64(r.Len()) + r.Dropped()
	unbounded := NewSpanRecorder()
	for i := 0; i < tasks; i++ {
		recordTask(unbounded, i)
	}
	if want := uint64(unbounded.Len()); total != want {
		t.Fatalf("retained+dropped = %d, want %d (every span accounted for)", total, want)
	}
}

// TestBoundedRecorderKeepsTail checks compaction drops oldest-first: the
// bounded recorder's retained spans are exactly the tail of what an
// unbounded recorder produces from the same event sequence, unchanged
// span for span.
func TestBoundedRecorderKeepsTail(t *testing.T) {
	bounded := NewSpanRecorder()
	bounded.Bound(32)
	unbounded := NewSpanRecorder()
	for i := 0; i < 200; i++ {
		recordTask(bounded, i)
		recordTask(unbounded, i)
	}
	all := unbounded.Set().Spans
	kept := bounded.Set().Spans
	tail := all[len(all)-len(kept):]
	for i := range kept {
		if kept[i] != tail[i] {
			t.Fatalf("retained span %d = %+v, want tail span %+v", i, kept[i], tail[i])
		}
	}
}

// TestBoundedRecorderKeepsOpenTraces checks a still-open task's spans
// survive compaction however old they are, and that its attempt can still
// be closed afterwards (the span-index map is re-anchored correctly).
func TestBoundedRecorderKeepsOpenTraces(t *testing.T) {
	r := NewSpanRecorder()
	r.Bound(16)

	// Open a long-lived task and leave its attempt in flight.
	straggler := &model.Task{ID: 9999, App: "straggler"}
	sid := r.AttemptStart(straggler, model.PlaceVM, false, 0)

	// Churn enough settled tasks to force several compactions.
	for i := 0; i < 300; i++ {
		recordTask(r, i)
	}
	if r.Dropped() == 0 {
		t.Fatal("no compaction happened; test needs more churn")
	}

	found := false
	for _, sp := range r.Set().Spans {
		if sp.Trace == 9999 && sp.Name == SpanAttempt {
			found = true
		}
	}
	if !found {
		t.Fatal("open trace's attempt span was compacted away")
	}

	// Closing the straggler must still find and finish its span.
	at := sim.Time(400)
	o := benchOutcome(straggler, at-2)
	r.AttemptEnd(sid, o, StatusWin, at)
	r.TaskDone(o, at)
	for _, sp := range r.Set().Spans {
		if sp.Trace == 9999 && sp.Name == SpanAttempt {
			if sp.Status != StatusWin {
				t.Fatalf("straggler attempt status = %q after AttemptEnd, want %q", sp.Status, StatusWin)
			}
			return
		}
	}
	t.Fatal("straggler attempt span missing after close")
}

// TestBoundPanicsOnNonPositive pins Bound's argument contract.
func TestBoundPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bound(0) did not panic")
		}
	}()
	NewSpanRecorder().Bound(0)
}
