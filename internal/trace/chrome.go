package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the JSON object format understood by
// chrome://tracing and Perfetto. Each backend becomes one process (pid);
// inside a backend, overlapping spans are packed onto the fewest lanes
// that keep each lane overlap-free, and each lane becomes one thread
// (tid) — the visual analogue of containers/cores in use. Task roots and
// gap spans land on a synthetic "tasks" process so end-to-end bars sit
// above the per-backend detail. Zero-width spans (breaker transitions,
// hedge cancels) export as instant events.

// chromeEvent is one trace event. Field order is fixed by the struct, so
// marshalling is deterministic.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TsUS  float64        `json:"ts"`
	DurUS float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// tasksTrack is the pid of the synthetic process holding task root and
// gap spans; backend processes count up from it.
const tasksTrack = 1

// WriteChromeTrace writes the set in Chrome trace-event format.
func (s *SpanSet) WriteChromeTrace(w io.Writer) error {
	// Deterministic pid assignment: the synthetic tasks track first, then
	// backends in first-appearance order (creation order is already a pure
	// function of the simulation).
	pidOf := map[string]int{"tasks": tasksTrack}
	var backends []string
	for _, sp := range s.Spans {
		if sp.Backend == "" {
			continue
		}
		if _, ok := pidOf[sp.Backend]; !ok {
			pidOf[sp.Backend] = tasksTrack + 1 + len(backends)
			backends = append(backends, sp.Backend)
		}
	}

	var events []chromeEvent
	events = append(events, metaEvent(tasksTrack, "tasks"))
	for _, b := range backends {
		events = append(events, metaEvent(pidOf[b], "backend: "+b))
	}

	// Lane-pack per pid: spans sorted by (start, id); each span takes the
	// first lane free at its start time.
	type laneKey struct{ pid int }
	order := make([]int, len(s.Spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := s.Spans[order[a]], s.Spans[order[b]]
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return sa.ID < sb.ID
	})
	laneEnds := make(map[laneKey][]float64)
	for _, i := range order {
		sp := s.Spans[i]
		pid := tasksTrack
		if sp.Backend != "" {
			pid = pidOf[sp.Backend]
		}
		key := laneKey{pid}
		lanes := laneEnds[key]
		tid := -1
		for l, end := range lanes {
			if end <= sp.Start {
				tid = l
				break
			}
		}
		if tid < 0 {
			tid = len(lanes)
			laneEnds[key] = append(lanes, sp.End)
		} else {
			laneEnds[key][tid] = sp.End
		}
		events = append(events, spanEvent(sp, pid, tid+1))
	}

	// Chrome requires per-track monotonic timestamps; a global (ts, pid,
	// tid) sort gives that and keeps the byte stream deterministic.
	body := events[1+len(backends):]
	sort.SliceStable(body, func(a, b int) bool {
		if body[a].TsUS != body[b].TsUS {
			return body[a].TsUS < body[b].TsUS
		}
		if body[a].PID != body[b].PID {
			return body[a].PID < body[b].PID
		}
		return body[a].TID < body[b].TID
	})

	data, err := json.Marshal(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
	if err != nil {
		return fmt.Errorf("trace: encoding chrome trace: %w", err)
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("trace: writing chrome trace: %w", err)
	}
	return nil
}

func metaEvent(pid int, name string) chromeEvent {
	return chromeEvent{
		Name: "process_name", Phase: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": name},
	}
}

func spanEvent(sp Span, pid, tid int) chromeEvent {
	args := map[string]any{"trace": sp.Trace, "span": sp.ID}
	if sp.Attempt > 0 {
		args["attempt"] = sp.Attempt
	}
	if sp.Hedge {
		args["hedge"] = true
	}
	if sp.Status != "" {
		args["status"] = sp.Status
	}
	if sp.Fault != "" {
		args["fault"] = sp.Fault
	}
	if sp.CostUSD != 0 {
		args["cost_usd"] = sp.CostUSD
	}
	name := sp.Name
	if sp.Name == SpanTask || sp.Name == SpanAttempt {
		name = fmt.Sprintf("%s %d", sp.Name, sp.Trace)
	}
	ev := chromeEvent{
		Name: name, Cat: sp.Name, Phase: "X",
		TsUS: sp.Start * 1e6, DurUS: sp.DurationS() * 1e6,
		PID: pid, TID: tid, Args: args,
	}
	if sp.DurationS() == 0 {
		ev.Phase = "i"
		ev.DurUS = 0
		ev.Scope = "t"
	}
	return ev
}
