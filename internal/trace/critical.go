package trace

import (
	"fmt"
	"math"
	"sort"

	"offload/internal/metrics"
)

// Phases lists the critical-path phase names in canonical order. Every
// second of a task's completion time is attributed to exactly one of
// these.
var Phases = []string{
	PhaseSubmit, PhaseUplink, PhaseQueue, PhaseColdStart,
	PhaseExec, PhaseDownlink, PhaseBackoff, PhaseOther,
}

// TaskPath is one task's critical-path decomposition: for every instant
// of [Started, Finished], the phase of the attempt that was determining
// the completion time at that instant.
//
// The critical path is extracted backwards from the attempt that decided
// the task (the winner, or the terminal failure): its phases cover the
// window back to its launch; before that, the attempt that was in flight
// when it launched (the primary a hedge raced, or the previous try a
// retry replaced) carries the path, with uncovered gaps between attempts
// attributed to backoff and the stretch before the first attempt to
// submit.
type TaskPath struct {
	Trace       uint64
	Placement   string // backend of the deciding attempt
	Failed      bool
	CompletionS float64
	Attempts    int
	PhaseS      map[string]float64
}

// CriticalPaths extracts one TaskPath per task trace in the set, in
// first-appearance order.
func CriticalPaths(set *SpanSet) []TaskPath {
	type traceSpans struct {
		root     *Span
		attempts []Span
		phases   map[uint64][]Span // attempt id → phase spans
	}
	byTrace := make(map[uint64]*traceSpans)
	var order []uint64
	get := func(id uint64) *traceSpans {
		ts, ok := byTrace[id]
		if !ok {
			ts = &traceSpans{phases: make(map[uint64][]Span)}
			byTrace[id] = ts
			order = append(order, id)
		}
		return ts
	}
	for i := range set.Spans {
		sp := set.Spans[i]
		if sp.Trace == 0 {
			continue
		}
		switch sp.Name {
		case SpanTask:
			get(sp.Trace).root = &set.Spans[i]
		case SpanAttempt:
			ts := get(sp.Trace)
			ts.attempts = append(ts.attempts, sp)
		case PhaseUplink, PhaseQueue, PhaseColdStart, PhaseExec, PhaseDownlink:
			ts := get(sp.Trace)
			ts.phases[sp.Parent] = append(ts.phases[sp.Parent], sp)
		}
	}

	var out []TaskPath
	for _, id := range order {
		ts := byTrace[id]
		if ts.root == nil {
			continue // incomplete trace: the run ended mid-task
		}
		out = append(out, walkPath(id, ts.root, ts.attempts, ts.phases))
	}
	return out
}

// walkPath runs the backwards walk for one task.
func walkPath(id uint64, root *Span, attempts []Span, phases map[uint64][]Span) TaskPath {
	p := TaskPath{
		Trace:       id,
		Placement:   root.Backend,
		Failed:      root.Status == StatusFailed,
		CompletionS: root.DurationS(),
		Attempts:    len(attempts),
		PhaseS:      make(map[string]float64, len(Phases)),
	}
	if len(attempts) == 0 {
		// Never dispatched (e.g. a task rejected by validation): all
		// submit-side time.
		p.PhaseS[PhaseSubmit] = p.CompletionS
		return p
	}
	sort.SliceStable(attempts, func(a, b int) bool {
		if attempts[a].Start != attempts[b].Start {
			return attempts[a].Start < attempts[b].Start
		}
		return attempts[a].ID < attempts[b].ID
	})

	// The deciding attempt: the winner if one exists, otherwise the
	// latest-ending attempt (terminal failure).
	cur := -1
	for i := range attempts {
		if attempts[i].Status == StatusWin {
			cur = i
			break
		}
	}
	if cur < 0 {
		cur = 0
		for i := range attempts {
			if attempts[i].End >= attempts[cur].End {
				cur = i
			}
		}
	}

	const eps = 1e-9
	tEnd := root.End
	for {
		a := attempts[cur]
		from := math.Max(a.Start, root.Start)
		p.addWindow(phases[a.ID], from, tEnd)
		tEnd = from
		if tEnd <= root.Start+eps {
			break
		}
		// The attempt in flight (or most recently finished) when cur
		// launched carries the path before it.
		prev := -1
		for i := 0; i < len(attempts); i++ {
			if attempts[i].Start >= a.Start-eps || i == cur {
				continue
			}
			if prev < 0 || attempts[i].End > attempts[prev].End ||
				(attempts[i].End == attempts[prev].End && attempts[i].Start > attempts[prev].Start) {
				prev = i
			}
		}
		if prev < 0 {
			p.PhaseS[PhaseSubmit] += tEnd - root.Start
			break
		}
		if attempts[prev].End < tEnd-eps {
			gapFrom := math.Max(attempts[prev].End, root.Start)
			p.PhaseS[PhaseBackoff] += tEnd - gapFrom
			tEnd = gapFrom
			if tEnd <= root.Start+eps {
				break
			}
		}
		cur = prev
	}
	return p
}

// addWindow attributes [from, to] using the attempt's phase spans,
// clipped to the window; anything the phases do not cover counts as
// "other".
func (p *TaskPath) addWindow(phases []Span, from, to float64) {
	if to <= from {
		return
	}
	sort.SliceStable(phases, func(a, b int) bool {
		if phases[a].Start != phases[b].Start {
			return phases[a].Start < phases[b].Start
		}
		return phases[a].ID < phases[b].ID
	})
	const eps = 1e-9 // float noise is not an uncovered hole
	cursor := from
	for _, ph := range phases {
		s, e := math.Max(ph.Start, cursor), math.Min(ph.End, to)
		if e <= s {
			continue
		}
		if s > cursor+eps {
			p.PhaseS[PhaseOther] += s - cursor
		}
		p.PhaseS[ph.Name] += e - s
		cursor = e
		if cursor >= to {
			return
		}
	}
	if to > cursor+eps {
		p.PhaseS[PhaseOther] += to - cursor
	}
}

// PhaseStats aggregates one phase's critical-path contribution across a
// group of tasks. Shares are fractions of total completion time: the
// mean over all tasks, and within the P50/P95/P99 completion-time bands
// (a band covers the tasks whose completion time ranks in [q, q+0.05],
// so the P95 column answers "what made the slow tasks slow").
type PhaseStats struct {
	MeanS     float64
	ShareMean float64
	ShareP50  float64
	ShareP95  float64
	ShareP99  float64
}

// PhaseGroup is the attribution for one slice of tasks (a placement, or
// "all").
type PhaseGroup struct {
	Name            string
	Tasks           int
	MeanCompletionS float64
	Phase           map[string]PhaseStats
}

// Attribution is the run-level phase-attribution result.
type Attribution struct {
	Run    string
	Policy string
	Failed int // failed tasks, excluded from the groups below
	Groups []PhaseGroup
}

// quantileBands are the completion-time bands the attribution reports.
var quantileBands = []struct {
	name string
	q, w float64
}{
	{"p50", 0.50, 0.05},
	{"p95", 0.95, 0.05},
	{"p99", 0.99, 0.01},
}

// Attribute computes the run-level phase-attribution tables from a span
// set: the mean critical-path seconds per phase and the share of
// completion time each phase contributes, overall and within the
// P50/P95/P99 completion-time bands, split by placement. Failed tasks
// are excluded (they have no completion time) but counted in Failed.
func Attribute(set *SpanSet) *Attribution {
	paths := CriticalPaths(set)
	att := &Attribution{Run: set.Run, Policy: set.Policy}
	var ok []TaskPath
	for _, p := range paths {
		if p.Failed {
			att.Failed++
			continue
		}
		ok = append(ok, p)
	}

	groups := map[string][]TaskPath{"all": ok}
	var names []string
	for _, p := range ok {
		if _, seen := groups[p.Placement]; !seen {
			names = append(names, p.Placement)
		}
		groups[p.Placement] = append(groups[p.Placement], p)
	}
	sort.Strings(names)
	for _, name := range append([]string{"all"}, names...) {
		att.Groups = append(att.Groups, aggregate(name, groups[name]))
	}
	return att
}

// aggregate folds one group of task paths into PhaseStats.
func aggregate(name string, paths []TaskPath) PhaseGroup {
	g := PhaseGroup{Name: name, Tasks: len(paths), Phase: make(map[string]PhaseStats, len(Phases))}
	if len(paths) == 0 {
		return g
	}
	sorted := make([]TaskPath, len(paths))
	copy(sorted, paths)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].CompletionS < sorted[b].CompletionS })

	totalS := 0.0
	for _, p := range sorted {
		totalS += p.CompletionS
	}
	g.MeanCompletionS = totalS / float64(len(sorted))

	shareIn := func(band []TaskPath, phase string) float64 {
		var ph, tot float64
		for _, p := range band {
			ph += p.PhaseS[phase]
			tot += p.CompletionS
		}
		if tot <= 0 {
			return 0
		}
		return ph / tot
	}
	bands := make(map[string][]TaskPath, len(quantileBands))
	for _, b := range quantileBands {
		bands[b.name] = bandSlice(sorted, b.q, b.w)
	}
	for _, phase := range Phases {
		var sum float64
		for _, p := range sorted {
			sum += p.PhaseS[phase]
		}
		g.Phase[phase] = PhaseStats{
			MeanS:     sum / float64(len(sorted)),
			ShareMean: shareIn(sorted, phase),
			ShareP50:  shareIn(bands["p50"], phase),
			ShareP95:  shareIn(bands["p95"], phase),
			ShareP99:  shareIn(bands["p99"], phase),
		}
	}
	return g
}

// bandSlice returns the tasks whose completion-time rank falls in
// [q, q+w], always at least one task (the one at rank q). sorted must be
// ascending by completion time.
func bandSlice(sorted []TaskPath, q, w float64) []TaskPath {
	n := len(sorted)
	if n == 0 {
		return nil
	}
	lo := int(q * float64(n))
	if lo >= n {
		lo = n - 1
	}
	hi := int(math.Ceil(math.Min(q+w, 1) * float64(n)))
	if hi <= lo {
		hi = lo + 1
	}
	return sorted[lo:hi]
}

// Group returns the named group, or nil.
func (a *Attribution) Group(name string) *PhaseGroup {
	for i := range a.Groups {
		if a.Groups[i].Name == name {
			return &a.Groups[i]
		}
	}
	return nil
}

// Table renders the attribution as a metrics.Table: one row per
// (group, phase) with positive contribution.
func (a *Attribution) Table() *metrics.Table {
	title := "critical-path phase attribution"
	if a.Policy != "" {
		title += " · policy=" + a.Policy
	}
	if a.Run != "" {
		title += " · run=" + a.Run
	}
	t := metrics.NewTable(title,
		"group", "phase", "mean_s", "share", "share_p50", "share_p95", "share_p99")
	for _, g := range a.Groups {
		for _, phase := range Phases {
			ps := g.Phase[phase]
			if ps.MeanS == 0 && ps.ShareP95 == 0 && ps.ShareP99 == 0 {
				continue
			}
			t.AddRow(g.Name, phase,
				fmt.Sprintf("%.4g", ps.MeanS),
				sharePct(ps.ShareMean), sharePct(ps.ShareP50),
				sharePct(ps.ShareP95), sharePct(ps.ShareP99))
		}
	}
	return t
}

func sharePct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Waste accounts for simulated time and money spent on attempts that did
// not produce their task's result: losing hedges, retried failures,
// timed-out stragglers, and every attempt of a task that ultimately
// failed.
type Waste struct {
	Attempts int // attempt spans seen
	Losing   int // attempts that did not settle their task

	Retries    int // attempts that failed transiently and were re-dispatched
	Timeouts   int // attempts abandoned by the per-attempt timeout
	Hedges     int // hedge attempts launched
	LostHedges int // hedge attempts that lost the race

	LostSeconds float64 // summed duration of losing attempts
	LostUSD     float64 // money billed by losing attempts

	AttemptUSD float64 // money billed across all attempts
	TaskUSD    float64 // money on task root spans (attempt totals folded by the scheduler)
}

// ComputeWaste scans a span set's attempt and root spans.
func ComputeWaste(set *SpanSet) Waste {
	var w Waste
	for _, sp := range set.Spans {
		switch sp.Name {
		case SpanTask:
			w.TaskUSD += sp.CostUSD
		case SpanAttempt:
			w.Attempts++
			w.AttemptUSD += sp.CostUSD
			if sp.Hedge {
				w.Hedges++
				if sp.Status != StatusWin {
					w.LostHedges++
				}
			}
			switch sp.Status {
			case StatusRetry:
				w.Retries++
			case StatusTimeout:
				w.Timeouts++
			}
			if sp.Status != StatusWin {
				w.Losing++
				w.LostSeconds += sp.DurationS()
				w.LostUSD += sp.CostUSD
			}
		}
	}
	return w
}

// Table renders the waste accounting.
func (w Waste) Table() *metrics.Table {
	t := metrics.NewTable("retry/hedge waste accounting", "metric", "value")
	t.AddRowf("attempts", w.Attempts)
	t.AddRowf("losing attempts", w.Losing)
	t.AddRowf("retries", w.Retries)
	t.AddRowf("timeouts", w.Timeouts)
	t.AddRowf("hedges launched", w.Hedges)
	t.AddRowf("hedges lost", w.LostHedges)
	t.AddRowf("lost simulated seconds", fmt.Sprintf("%.4g", w.LostSeconds))
	t.AddRowf("lost spend (USD)", fmt.Sprintf("%.6g", w.LostUSD))
	t.AddRowf("attempt spend (USD)", fmt.Sprintf("%.6g", w.AttemptUSD))
	t.AddRowf("task spend (USD)", fmt.Sprintf("%.6g", w.TaskUSD))
	return t
}
