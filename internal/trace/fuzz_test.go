package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONL checks the trace reader never panics and that accepted
// streams survive a write→read round trip.
func FuzzReadJSONL(f *testing.F) {
	var rec Recorder
	rec.Add(sample())
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("\n\n")
	f.Add(`{"task_id":1}`)
	f.Add("{bad")

	f.Fuzz(func(t *testing.T, in string) {
		records, err := ReadJSONL(strings.NewReader(in))
		if err != nil {
			return
		}
		var out Recorder
		for _, r := range records {
			out.Add(r)
		}
		var round bytes.Buffer
		if err := out.WriteJSONL(&round); err != nil {
			t.Fatalf("accepted records do not re-encode: %v", err)
		}
		back, err := ReadJSONL(&round)
		if err != nil {
			t.Fatalf("re-encoded records do not re-parse: %v", err)
		}
		if len(back) != len(records) {
			t.Fatalf("round trip changed record count: %d vs %d", len(back), len(records))
		}
	})
}
