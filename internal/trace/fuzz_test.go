package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONL checks the trace reader never panics and that accepted
// streams survive a write→read round trip.
func FuzzReadJSONL(f *testing.F) {
	var rec Recorder
	rec.Add(sample())
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("\n\n")
	f.Add(`{"task_id":1}`)
	f.Add("{bad")

	f.Fuzz(func(t *testing.T, in string) {
		records, err := ReadJSONL(strings.NewReader(in))
		if err != nil {
			return
		}
		var out Recorder
		for _, r := range records {
			out.Add(r)
		}
		var round bytes.Buffer
		if err := out.WriteJSONL(&round); err != nil {
			t.Fatalf("accepted records do not re-encode: %v", err)
		}
		back, err := ReadJSONL(&round)
		if err != nil {
			t.Fatalf("re-encoded records do not re-parse: %v", err)
		}
		if len(back) != len(records) {
			t.Fatalf("round trip changed record count: %d vs %d", len(back), len(records))
		}
	})
}

// FuzzReadSpansJSONL checks the span codec never panics, rejects spans
// the validator forbids, and that accepted streams survive a write→read
// round trip span-for-span.
func FuzzReadSpansJSONL(f *testing.F) {
	rec := NewSpanRecorder()
	rec.SetMeta("fuzz", "cloud-all")
	driveRetryHedge(rec)
	var buf bytes.Buffer
	if err := rec.Set().WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add(`{"format":"offload-spans","version":1}`)
	f.Add(`{"format":"offload-spans","version":2}`)
	f.Add(`{"format":"offload-spans","version":1}` + "\n" + `{"id":1,"name":"task","start_s":3,"end_s":1}`)
	f.Add(`{"format":"offload-spans","version":1}` + "\n{bad")

	f.Fuzz(func(t *testing.T, in string) {
		set, err := ReadSpansJSONL(strings.NewReader(in))
		if err != nil {
			return
		}
		for i, sp := range set.Spans {
			if sp.End < sp.Start || sp.Name == "" {
				t.Fatalf("validator let span %d through: %+v", i, sp)
			}
		}
		var round bytes.Buffer
		if err := set.WriteJSONL(&round); err != nil {
			t.Fatalf("accepted set does not re-encode: %v", err)
		}
		back, err := ReadSpansJSONL(&round)
		if err != nil {
			t.Fatalf("re-encoded set does not re-parse: %v", err)
		}
		if back.Run != set.Run || back.Policy != set.Policy || len(back.Spans) != len(set.Spans) {
			t.Fatalf("round trip changed the set: %d vs %d spans", len(back.Spans), len(set.Spans))
		}
		for i := range set.Spans {
			if back.Spans[i] != set.Spans[i] {
				t.Fatalf("round trip mutated span %d:\nin  %+v\nout %+v", i, set.Spans[i], back.Spans[i])
			}
		}
		// Any accepted set must also export as valid, deterministic Chrome
		// JSON without panicking.
		var chrome bytes.Buffer
		if err := set.WriteChromeTrace(&chrome); err != nil {
			t.Fatalf("accepted set does not export to chrome format: %v", err)
		}
	})
}
