package trace

import (
	"math"
	"sort"

	"offload/internal/model"
	"offload/internal/sim"
)

// Span names. A task trace is a tree: one root "task" span, one "attempt"
// span per dispatch (retries and hedges included), and phase spans under
// each attempt reconstructing where the attempt's wall time went. Gap
// spans ("submit", "backoff") hang off the root and cover the intervals
// no attempt was in flight. Zero-width event spans ("breaker",
// "hedge_cancel") mark control-plane transitions.
const (
	SpanTask    = "task"
	SpanAttempt = "attempt"
	SpanJob     = "job" // DAG job root; its children are the node task spans

	PhaseSubmit    = "submit"     // decided but no attempt launched yet (batching, shifting)
	PhaseUplink    = "uplink"     // input bytes in flight to the execution site
	PhaseQueue     = "queue"      // waiting for a free unit at the substrate
	PhaseColdStart = "cold_start" // environment provisioning
	PhaseExec      = "exec"       // computation
	PhaseDownlink  = "downlink"   // output bytes returning to the device
	PhaseBackoff   = "backoff"    // between attempts: retry backoff / breaker wait
	PhaseOther     = "other"      // attempt time the outcome could not decompose

	EventBreaker     = "breaker"      // Status carries "from>to"
	EventHedgeCancel = "hedge_cancel" // armed hedge timer cancelled unfired
	EventAdapt       = "adapt"        // adaptive-layer decision; Status carries the kind
	EventRegion      = "region"       // region health transition; Status carries "down"/"up"
	EventDegrade     = "degrade"      // ladder rung change; Status carries "from>to"
	EventRehome      = "rehome"       // task re-dispatched across regions; Status carries "from>to"
)

// Attempt statuses: how one dispatch of a task ended.
const (
	StatusWin     = "win"     // this attempt's result settled the task
	StatusLose    = "lose"    // completed fine, but the task was already decided
	StatusRetry   = "retry"   // transient failure, re-dispatched
	StatusFailed  = "failed"  // terminal failure
	StatusTimeout = "timeout" // abandoned by the per-attempt timeout
)

// Task root statuses.
const (
	StatusOK     = "ok"
	StatusMissed = "missed"
)

// Fault classifications recorded on failed attempt spans.
const (
	FaultTransient = "transient"
	FaultFatal     = "fatal"
)

// Span is one node of a task's causal trace, flattened for serialisation.
// Times are simulated seconds. Spans are comparable, so tests and the
// fuzz round trip can use ==.
type Span struct {
	ID     uint64 `json:"id"`
	Trace  uint64 `json:"trace,omitempty"`  // task ID; 0 for run-scoped events
	Parent uint64 `json:"parent,omitempty"` // 0 for roots and run-scoped events

	Name    string  `json:"name"`
	Backend string  `json:"backend,omitempty"` // placement the span ran against
	Start   float64 `json:"start_s"`
	End     float64 `json:"end_s"`

	Attempt int    `json:"attempt,omitempty"` // 1-based dispatch number within the task
	Hedge   bool   `json:"hedge,omitempty"`
	Status  string `json:"status,omitempty"`
	Fault   string `json:"fault,omitempty"`

	CostUSD float64 `json:"cost_usd,omitempty"`
}

// DurationS returns the span's width in simulated seconds.
func (s Span) DurationS() float64 { return s.End - s.Start }

// Tracer receives the scheduler's causal hook points. Implementations
// must be passive: they may record, but must not schedule events, draw
// randomness, or mutate tasks — attaching a tracer never changes
// simulated results (TestSpansAreInert enforces this).
//
// AttemptStart returns an attempt handle that the scheduler threads back
// into AttemptEnd / AttemptCost, so overlapping attempts of one task
// (hedges) stay distinguishable.
type Tracer interface {
	// AttemptStart marks one dispatch of the task at the placement.
	AttemptStart(task *model.Task, placement model.Placement, hedge bool, at sim.Time) uint64
	// AttemptEnd closes the attempt with its outcome and status (one of
	// the Status* constants).
	AttemptEnd(id uint64, o model.Outcome, status string, at sim.Time)
	// AttemptCost folds money billed by an attempt after it was already
	// closed (a timed-out attempt's zombie completion).
	AttemptCost(id uint64, costUSD float64)
	// BreakerTransition records a circuit-breaker state change on a
	// backend; states arrive as strings ("closed", "open", "half-open").
	BreakerTransition(placement model.Placement, from, to string, at sim.Time)
	// HedgeCanceled records an armed hedge timer dismissed unfired.
	HedgeCanceled(task model.TaskID, at sim.Time)
	// TaskDone records the task's settled end-to-end outcome.
	TaskDone(o model.Outcome, at sim.Time)
}

// JobTracer is the optional extension a Tracer can implement to receive
// the DAG orchestrator's hook points: node tasks adopted under a job
// trace, and the job's settlement. Kept separate from Tracer so existing
// implementations stay valid. The same passivity contract applies.
type JobTracer interface {
	// AdoptTrace parents the task's (future) root span under the job's
	// root span. Call before the task settles.
	AdoptTrace(task model.TaskID, job uint64)
	// JobDone records the settled job as a root span on the job trace.
	JobDone(job uint64, app string, start, end sim.Time, status string, costUSD float64)
}

// RegionTracer is the optional extension a Tracer can implement to
// receive the regional failover layer's hook points. Kept separate from
// Tracer so existing implementations stay valid; the scheduler
// type-asserts for it. The same passivity contract applies.
type RegionTracer interface {
	// RegionTransition records a region going down or coming back up.
	RegionTransition(region string, down bool, at sim.Time)
	// DegradationChange records the graceful-degradation ladder moving
	// between rungs (rung names: healthy, shed-low, localize-critical,
	// queue-and-wait).
	DegradationChange(from, to string, at sim.Time)
	// TaskRehomed records a task re-dispatched from a dead region's
	// placement to a surviving one, paying the state-transfer cost.
	TaskRehomed(task model.TaskID, from, to model.Placement, at sim.Time)
}

// SpanRecorder assembles Spans from the scheduler's Tracer hook points.
// It reconstructs per-attempt phase spans from each attempt's outcome and
// synthesizes the submit/backoff gaps when the task settles. IDs are
// assigned in event order, so a recorder driven by a deterministic
// simulation produces byte-identical output every run.
type SpanRecorder struct {
	run    string
	policy string

	spans  []Span
	nextID uint64

	byID     map[uint64]int      // attempt span id → index in spans
	roots    map[uint64]uint64   // trace → reserved root span id
	attempts map[uint64]int      // trace → attempts started so far
	byTrace  map[uint64][]uint64 // trace → attempt span ids, start order
	adopted  map[uint64]uint64   // task trace → owning job trace (AdoptTrace)

	// freeIDs pools the per-trace attempt-id slices: a settled task's
	// slice is recycled for the next task instead of allocating, so
	// steady-state recording stops paying one slice per task.
	freeIDs [][]uint64

	// Bounded mode (see Bound): limit > 0 caps retained spans by
	// compacting away the oldest settled-trace spans; dropped counts the
	// casualties.
	limit   int
	dropped uint64
}

// NewSpanRecorder returns an empty recorder.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{
		byID:     make(map[uint64]int),
		roots:    make(map[uint64]uint64),
		attempts: make(map[uint64]int),
		byTrace:  make(map[uint64][]uint64),
		adopted:  make(map[uint64]uint64),
	}
}

// SetMeta names the run (e.g. the experiment cell) and the policy that
// produced it; both land in the export header.
func (r *SpanRecorder) SetMeta(run, policy string) {
	r.run = run
	r.policy = policy
}

// Bound puts the recorder into bounded mode: it retains at most roughly
// 2×maxSpans spans, compacting away the oldest settled-task spans once
// the buffer fills (spans of still-open tasks are always kept, whatever
// their age). Million-task runs then record at a flat memory footprint
// instead of retaining every span tree. Dropped reports how many spans
// compaction discarded. maxSpans must be positive; call before recording.
//
// The default (unbounded) recorder retains everything and its output is
// unaffected by this feature existing.
func (r *SpanRecorder) Bound(maxSpans int) {
	if maxSpans <= 0 {
		panic("trace: Bound with non-positive span limit")
	}
	r.limit = maxSpans
}

// Dropped returns how many spans bounded-mode compaction has discarded.
func (r *SpanRecorder) Dropped() uint64 { return r.dropped }

// compact drops the oldest settled-trace spans down to the bound,
// keeping every span of a still-open trace and the newest limit spans.
// It runs only when bounded mode is on and the buffer hit 2×limit, so
// the cost amortises to O(1) per recorded span.
func (r *SpanRecorder) compact() {
	keepFrom := len(r.spans) - r.limit
	w := 0
	for i := range r.spans {
		sp := r.spans[i]
		_, open := r.roots[sp.Trace]
		if i >= keepFrom || (sp.Trace != 0 && open) {
			r.spans[w] = sp
			w++
		} else {
			r.dropped++
		}
	}
	r.spans = r.spans[:w]
	// Surviving spans moved; re-anchor the open attempts' index map.
	clear(r.byID)
	for i := range r.spans {
		sp := &r.spans[i]
		if sp.Name == SpanAttempt {
			if _, open := r.roots[sp.Trace]; open {
				r.byID[sp.ID] = i
			}
		}
	}
}

// Len returns the number of spans recorded so far.
func (r *SpanRecorder) Len() int { return len(r.spans) }

// Set returns the recorded spans with the run metadata attached. The
// span slice is a copy.
func (r *SpanRecorder) Set() *SpanSet {
	cp := make([]Span, len(r.spans))
	copy(cp, r.spans)
	return &SpanSet{Run: r.run, Policy: r.policy, Spans: cp}
}

func (r *SpanRecorder) id() uint64 {
	r.nextID++
	return r.nextID
}

// rootFor reserves (or returns) the root span ID for a trace, so attempt
// spans can point at their parent before the root itself is appended.
func (r *SpanRecorder) rootFor(trace uint64) uint64 {
	if id, ok := r.roots[trace]; ok {
		return id
	}
	id := r.id()
	r.roots[trace] = id
	return id
}

// AttemptStart implements Tracer.
func (r *SpanRecorder) AttemptStart(task *model.Task, placement model.Placement, hedge bool, at sim.Time) uint64 {
	trace := uint64(task.ID)
	root := r.rootFor(trace)
	r.attempts[trace]++
	id := r.id()
	r.byID[id] = len(r.spans)
	ids, ok := r.byTrace[trace]
	if !ok && len(r.freeIDs) > 0 {
		// First attempt of this trace: adopt a settled trace's slice
		// instead of growing a fresh one.
		ids = r.freeIDs[len(r.freeIDs)-1]
		r.freeIDs = r.freeIDs[:len(r.freeIDs)-1]
	}
	r.byTrace[trace] = append(ids, id)
	r.spans = append(r.spans, Span{
		ID: id, Trace: trace, Parent: root,
		Name: SpanAttempt, Backend: placement.String(),
		Start: float64(at), End: float64(at),
		Attempt: r.attempts[trace], Hedge: hedge,
	})
	return id
}

// AttemptEnd implements Tracer.
func (r *SpanRecorder) AttemptEnd(id uint64, o model.Outcome, status string, at sim.Time) {
	idx, ok := r.byID[id]
	if !ok {
		return
	}
	sp := &r.spans[idx]
	sp.End = float64(at)
	sp.Status = status
	sp.CostUSD += o.CostUSD
	if o.Failed && o.Exec.Err != nil {
		if model.Transient(o.Exec.Err) {
			sp.Fault = FaultTransient
		} else {
			sp.Fault = FaultFatal
		}
	}
	if status != StatusTimeout {
		// A timed-out attempt's synthetic outcome says nothing about where
		// the straggler was stuck; leave it undecomposed.
		r.emitPhases(*sp, o)
	}
}

// AttemptCost implements Tracer.
func (r *SpanRecorder) AttemptCost(id uint64, costUSD float64) {
	if idx, ok := r.byID[id]; ok {
		r.spans[idx].CostUSD += costUSD
	}
}

// emitPhases reconstructs the attempt's timeline from its outcome:
// uplink → queue → cold_start → exec → downlink, emitting only phases
// with positive width.
func (r *SpanRecorder) emitPhases(a Span, o model.Outcome) {
	add := func(name string, start, end float64) {
		if !(end > start) || math.IsNaN(start) || math.IsNaN(end) {
			return
		}
		r.spans = append(r.spans, Span{
			ID: r.id(), Trace: a.Trace, Parent: a.ID,
			Name: name, Backend: a.Backend,
			Start: start, End: end,
			Attempt: a.Attempt, Hedge: a.Hedge,
		})
	}
	up := float64(o.UplinkTime)
	add(PhaseUplink, a.Start, a.Start+up)
	// The substrate report places queue wait and cold start at the front
	// of [Exec.Start, Exec.End]; the remainder is computation.
	es, ee := float64(o.Exec.Start), float64(o.Exec.End)
	if ee > 0 || es > 0 {
		q, c := float64(o.Exec.QueueWait), float64(o.Exec.ColdStart)
		add(PhaseQueue, es, es+q)
		add(PhaseColdStart, es+q, es+q+c)
		add(PhaseExec, es+q+c, ee)
		add(PhaseDownlink, ee, ee+float64(o.DownlinkTime))
	}
}

// BreakerTransition implements Tracer.
func (r *SpanRecorder) BreakerTransition(placement model.Placement, from, to string, at sim.Time) {
	r.spans = append(r.spans, Span{
		ID: r.id(), Name: EventBreaker, Backend: placement.String(),
		Start: float64(at), End: float64(at),
		Status: from + ">" + to,
	})
}

// AdaptEvent records a control-plane decision of the adaptive layer
// (internal/adapt) as a zero-width run-scoped event span: Status carries
// the decision kind (drift_reset, resize, localize), Backend its subject.
func (r *SpanRecorder) AdaptEvent(kind, subject string, at sim.Time) {
	r.spans = append(r.spans, Span{
		ID: r.id(), Name: EventAdapt, Backend: subject,
		Start: float64(at), End: float64(at),
		Status: kind,
	})
}

// RegionTransition implements RegionTracer as a zero-width run-scoped
// event span: Backend carries the region name, Status "down" or "up".
func (r *SpanRecorder) RegionTransition(region string, down bool, at sim.Time) {
	status := "up"
	if down {
		status = "down"
	}
	r.spans = append(r.spans, Span{
		ID: r.id(), Name: EventRegion, Backend: region,
		Start: float64(at), End: float64(at),
		Status: status,
	})
}

// DegradationChange implements RegionTracer: a zero-width run-scoped
// event span whose Status carries "from>to" rung names.
func (r *SpanRecorder) DegradationChange(from, to string, at sim.Time) {
	r.spans = append(r.spans, Span{
		ID: r.id(), Name: EventDegrade,
		Start: float64(at), End: float64(at),
		Status: from + ">" + to,
	})
}

// TaskRehomed implements RegionTracer: a zero-width span on the task's
// trace whose Status carries the "from>to" placements.
func (r *SpanRecorder) TaskRehomed(task model.TaskID, from, to model.Placement, at sim.Time) {
	trace := uint64(task)
	r.spans = append(r.spans, Span{
		ID: r.id(), Trace: trace, Parent: r.rootFor(trace),
		Name:  EventRehome,
		Start: float64(at), End: float64(at),
		Status: from.String() + ">" + to.String(),
	})
}

// HedgeCanceled implements Tracer.
func (r *SpanRecorder) HedgeCanceled(task model.TaskID, at sim.Time) {
	trace := uint64(task)
	r.spans = append(r.spans, Span{
		ID: r.id(), Trace: trace, Parent: r.rootFor(trace),
		Name:  EventHedgeCancel,
		Start: float64(at), End: float64(at),
	})
}

// TaskDone implements Tracer: it appends the root span and the
// submit/backoff gaps — the sub-intervals of [Started, Finished] during
// which no attempt was in flight.
func (r *SpanRecorder) TaskDone(o model.Outcome, at sim.Time) {
	if o.Task == nil {
		return
	}
	trace := uint64(o.Task.ID)
	root := r.rootFor(trace)
	start, end := float64(o.Started), float64(o.Finished)

	status := StatusOK
	switch {
	case o.Failed:
		status = StatusFailed
	case o.MissedDeadline():
		status = StatusMissed
	}

	// A task adopted under a DAG job parents its root span there; the job
	// root's ID is reserved now and materialises at JobDone.
	var parent uint64
	if job, ok := r.adopted[trace]; ok {
		parent = r.rootFor(job)
		delete(r.adopted, trace)
	}

	r.emitGaps(trace, root, start, end)
	r.spans = append(r.spans, Span{
		ID: root, Trace: trace, Parent: parent,
		Name: SpanTask, Backend: o.Placement.String(),
		Start: start, End: end,
		Attempt: o.Attempts, Status: status,
		CostUSD: o.CostUSD,
	})

	// The task settled and every attempt drained (the scheduler only
	// reports drained tasks), so its bookkeeping can go. The attempt-id
	// slice returns to the pool for the next trace.
	if ids, ok := r.byTrace[trace]; ok {
		for _, id := range ids {
			delete(r.byID, id)
		}
		r.freeIDs = append(r.freeIDs, ids[:0])
	}
	delete(r.byTrace, trace)
	delete(r.roots, trace)
	delete(r.attempts, trace)

	if r.limit > 0 && len(r.spans) > 2*r.limit {
		r.compact()
	}
}

// AdoptTrace implements JobTracer: when the task settles, its root span
// will be parented under the job's root span instead of standing alone.
func (r *SpanRecorder) AdoptTrace(task model.TaskID, job uint64) {
	r.adopted[uint64(task)] = job
}

// JobDone implements JobTracer: it appends the job's root span — the
// parent every adopted node task span points at — closing the job trace.
func (r *SpanRecorder) JobDone(job uint64, app string, start, end sim.Time, status string, costUSD float64) {
	root := r.rootFor(job)
	r.spans = append(r.spans, Span{
		ID: root, Trace: job,
		Name: SpanJob, Backend: app,
		Start: float64(start), End: float64(end),
		Status: status, CostUSD: costUSD,
	})
	delete(r.roots, job)
	if r.limit > 0 && len(r.spans) > 2*r.limit {
		r.compact()
	}
}

// MergeSets combines spans from several recorders into one SpanSet in a
// canonical order, independent of how work was partitioned across the
// recorders. The sharded fleet records each shard's spans on its own
// recorder (recorders are single-threaded) and merges at the end; for
// the merged output to be byte-identical at every shard count, each
// trace (task) must be recorded wholly by one recorder, and trace IDs
// must not depend on the partition — both hold for per-UE task IDs.
//
// Ordering: spans sort by trace ID, and within a trace by their recorder
// position (one trace, one recorder, so that position is the recording
// order the serial run would have produced). Span IDs are renumbered
// densely in the canonical order, with parent links rewritten to match.
// Trace-0 (run-scoped event) spans order by start time, then input-set
// position — deterministic, but only partition-independent when such
// events are absent, which the sharded fleet's configuration gate
// guarantees.
func MergeSets(run, policy string, sets ...*SpanSet) *SpanSet {
	type entry struct {
		sp  Span
		set int
		pos int
	}
	var entries []entry
	for si, s := range sets {
		if s == nil {
			continue
		}
		for pi, sp := range s.Spans {
			entries = append(entries, entry{sp: sp, set: si, pos: pi})
		}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := &entries[i], &entries[j]
		if a.sp.Trace != b.sp.Trace {
			return a.sp.Trace < b.sp.Trace
		}
		if a.set != b.set {
			if a.sp.Start != b.sp.Start {
				return a.sp.Start < b.sp.Start
			}
			return a.set < b.set
		}
		return a.pos < b.pos
	})
	// Two passes: IDs first (a root span is appended after its children,
	// so a child's Parent can name an ID that sorts later), then links.
	type key struct {
		set int
		id  uint64
	}
	newID := make(map[key]uint64, len(entries))
	for i := range entries {
		newID[key{entries[i].set, entries[i].sp.ID}] = uint64(i + 1)
	}
	out := make([]Span, len(entries))
	for i := range entries {
		sp := entries[i].sp
		sp.ID = newID[key{entries[i].set, sp.ID}]
		if sp.Parent != 0 {
			sp.Parent = newID[key{entries[i].set, sp.Parent}]
		}
		out[i] = sp
	}
	return &SpanSet{Run: run, Policy: policy, Spans: out}
}

// emitGaps walks the task's attempt intervals in start order and emits a
// gap span for every hole in their union over [start, end]: before the
// first attempt the task was pending submission ("submit"), between
// attempts it was backing off ("backoff").
func (r *SpanRecorder) emitGaps(trace, root uint64, start, end float64) {
	const eps = 1e-9
	cursor := start
	sawAttempt := false
	for _, id := range r.byTrace[trace] {
		idx, ok := r.byID[id]
		if !ok {
			continue
		}
		a := r.spans[idx]
		if a.Start-cursor > eps && a.Start <= end+eps {
			name := PhaseBackoff
			if !sawAttempt {
				name = PhaseSubmit
			}
			r.spans = append(r.spans, Span{
				ID: r.id(), Trace: trace, Parent: root,
				Name: name, Start: cursor, End: math.Min(a.Start, end),
			})
		}
		sawAttempt = true
		if a.End > cursor {
			cursor = a.End
		}
		if cursor >= end {
			return
		}
	}
	if end-cursor > eps {
		name := PhaseBackoff
		if !sawAttempt {
			name = PhaseSubmit
		}
		r.spans = append(r.spans, Span{
			ID: r.id(), Trace: trace, Parent: root,
			Name: name, Start: cursor, End: end,
		})
	}
}
