package trace

import (
	"bytes"
	"fmt"
	"testing"

	"offload/internal/model"
)

// driveRetryHedge replays a hand-built scheduler history against a
// recorder: task 1 retries once (transient fault, backoff gap) and then
// wins; task 2 races a hedge that loses; a breaker blips on the function
// backend along the way.
func driveRetryHedge(r *SpanRecorder) {
	t1 := &model.Task{ID: 1}
	t2 := &model.Task{ID: 2}

	// Task 1, attempt 1: fails transiently at t=4 after 1s uplink + 2s exec.
	a1 := r.AttemptStart(t1, model.PlaceFunction, false, 1)
	r.AttemptEnd(a1, model.Outcome{
		Task: t1, Placement: model.PlaceFunction,
		UplinkTime: 1,
		Exec:       model.ExecReport{Start: 2, End: 4, Err: fmt.Errorf("boom: %w", model.ErrTransient)},
		CostUSD:    0.01, Failed: true,
	}, StatusRetry, 4)

	r.BreakerTransition(model.PlaceFunction, "closed", "open", 4)

	// Task 1, attempt 2 after 2s backoff: wins at t=10.
	b1 := r.AttemptStart(t1, model.PlaceFunction, false, 6)
	r.AttemptEnd(b1, model.Outcome{
		Task: t1, Placement: model.PlaceFunction,
		UplinkTime: 1, DownlinkTime: 1,
		Exec:    model.ExecReport{Start: 7, End: 9, QueueWait: 0.5, ColdStart: 0.5},
		CostUSD: 0.02,
	}, StatusWin, 10)
	r.TaskDone(model.Outcome{
		Task: t1, Placement: model.PlaceFunction,
		Started: 1, Finished: 10, CostUSD: 0.03, Attempts: 2,
	}, 10)

	// Task 2: primary straggles, hedge fires at t=15 and the primary still
	// wins at t=20; the hedge drains at t=22 as a loser.
	p2 := r.AttemptStart(t2, model.PlaceFunction, false, 12)
	h2 := r.AttemptStart(t2, model.PlaceFunction, true, 15)
	r.AttemptEnd(p2, model.Outcome{
		Task: t2, Placement: model.PlaceFunction,
		UplinkTime: 1, DownlinkTime: 1,
		Exec:    model.ExecReport{Start: 13, End: 19},
		CostUSD: 0.04,
	}, StatusWin, 20)
	r.AttemptEnd(h2, model.Outcome{
		Task: t2, Placement: model.PlaceFunction,
		UplinkTime: 1,
		Exec:       model.ExecReport{Start: 16, End: 21},
		CostUSD:    0.05,
	}, StatusLose, 22)
	r.TaskDone(model.Outcome{
		Task: t2, Placement: model.PlaceFunction,
		Started: 12, Finished: 20, CostUSD: 0.09, Attempts: 2,
	}, 20)
}

func spansOf(set *SpanSet, name string) []Span {
	var out []Span
	for _, sp := range set.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

func TestSpanRecorderTree(t *testing.T) {
	r := NewSpanRecorder()
	r.SetMeta("unit", "cloud-all")
	driveRetryHedge(r)
	set := r.Set()
	if set.Run != "unit" || set.Policy != "cloud-all" {
		t.Fatalf("meta lost: %+v", set)
	}

	roots := spansOf(set, SpanTask)
	if len(roots) != 2 {
		t.Fatalf("%d roots, want 2", len(roots))
	}
	attempts := spansOf(set, SpanAttempt)
	if len(attempts) != 4 {
		t.Fatalf("%d attempts, want 4", len(attempts))
	}
	byTrace := map[uint64]Span{}
	for _, rt := range roots {
		byTrace[rt.Trace] = rt
		if rt.Status != StatusOK {
			t.Errorf("root %d status %q", rt.Trace, rt.Status)
		}
	}
	for _, a := range attempts {
		if a.Parent != byTrace[a.Trace].ID {
			t.Errorf("attempt %d parented to %d, want root %d", a.ID, a.Parent, byTrace[a.Trace].ID)
		}
	}

	// Attempt statuses and fault classification.
	if a := attempts[0]; a.Status != StatusRetry || a.Fault != FaultTransient || a.Attempt != 1 {
		t.Errorf("first attempt wrong: %+v", a)
	}
	if a := attempts[1]; a.Status != StatusWin || a.Attempt != 2 {
		t.Errorf("second attempt wrong: %+v", a)
	}
	hedges := 0
	for _, a := range attempts {
		if a.Hedge {
			hedges++
			if a.Status != StatusLose {
				t.Errorf("hedge status %q, want lose", a.Status)
			}
		}
	}
	if hedges != 1 {
		t.Fatalf("%d hedge attempts, want 1", hedges)
	}

	// Task 1's backoff gap: [4, 6] between the failed attempt and the retry.
	backoffs := spansOf(set, PhaseBackoff)
	foundGap := false
	for _, g := range backoffs {
		if g.Trace == 1 && g.Start == 4 && g.End == 6 {
			foundGap = true
		}
	}
	if !foundGap {
		t.Errorf("no [4,6] backoff gap for task 1; backoffs: %+v", backoffs)
	}

	// The winning attempt of task 1 decomposes into all five phases.
	want := map[string][2]float64{
		PhaseUplink:    {6, 7},
		PhaseQueue:     {7, 7.5},
		PhaseColdStart: {7.5, 8},
		PhaseExec:      {8, 9},
		PhaseDownlink:  {9, 10},
	}
	winID := attempts[1].ID
	got := map[string][2]float64{}
	for _, sp := range set.Spans {
		if sp.Parent == winID {
			got[sp.Name] = [2]float64{sp.Start, sp.End}
		}
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("phase %s = %v, want %v", name, got[name], w)
		}
	}

	// Breaker events are run-scoped zero-width markers.
	brk := spansOf(set, EventBreaker)
	if len(brk) != 1 || brk[0].Status != "closed>open" || brk[0].DurationS() != 0 {
		t.Errorf("breaker events wrong: %+v", brk)
	}

	// Per-trace bookkeeping must be released once a task settles.
	if len(r.byID) != 0 || len(r.roots) != 0 || len(r.byTrace) != 0 {
		t.Errorf("recorder retained bookkeeping: %d byID, %d roots, %d byTrace",
			len(r.byID), len(r.roots), len(r.byTrace))
	}
}

func TestSpanRecorderTimeoutCost(t *testing.T) {
	r := NewSpanRecorder()
	task := &model.Task{ID: 7}
	a := r.AttemptStart(task, model.PlaceFunction, false, 0)
	r.AttemptEnd(a, model.Outcome{Task: task, Placement: model.PlaceFunction, Failed: true},
		StatusTimeout, 30)
	// The zombie completes later and bills money onto the closed attempt.
	r.AttemptCost(a, 0.5)
	r.TaskDone(model.Outcome{Task: task, Placement: model.PlaceLocal,
		Started: 0, Finished: 40, CostUSD: 0.5, Attempts: 1}, 40)

	set := r.Set()
	attempts := spansOf(set, SpanAttempt)
	if len(attempts) != 1 {
		t.Fatalf("%d attempts, want 1", len(attempts))
	}
	if attempts[0].Status != StatusTimeout || attempts[0].CostUSD != 0.5 {
		t.Fatalf("timeout attempt wrong: %+v", attempts[0])
	}
	// Timeout outcomes are synthetic: no phase decomposition.
	for _, name := range []string{PhaseUplink, PhaseQueue, PhaseExec} {
		if n := len(spansOf(set, name)); n != 0 {
			t.Errorf("timeout attempt emitted %d %s phases", n, name)
		}
	}
	w := ComputeWaste(set)
	if w.Timeouts != 1 || w.LostUSD != 0.5 || w.AttemptUSD != w.TaskUSD {
		t.Fatalf("waste wrong: %+v", w)
	}
}

func TestCriticalPathRetryAndHedge(t *testing.T) {
	r := NewSpanRecorder()
	driveRetryHedge(r)
	paths := CriticalPaths(r.Set())
	if len(paths) != 2 {
		t.Fatalf("%d paths, want 2", len(paths))
	}
	byTrace := map[uint64]TaskPath{}
	for _, p := range paths {
		byTrace[p.Trace] = p
	}

	// Task 1: 9s completion = 3s attempt 1 (uplink 1 + other 1 + exec 1... )
	// — precisely: attempt1 [1,4] (uplink 1, gap 1 as other, exec 2 →
	// clipped), backoff [4,6], attempt2 [6,10] fully decomposed.
	p1 := byTrace[1]
	if p1.Attempts != 2 || p1.Failed {
		t.Fatalf("task 1 path wrong: %+v", p1)
	}
	total := 0.0
	for _, v := range p1.PhaseS {
		total += v
	}
	if total != p1.CompletionS {
		t.Fatalf("task 1 phases sum %g != completion %g (%+v)", total, p1.CompletionS, p1.PhaseS)
	}
	if p1.PhaseS[PhaseBackoff] != 2 {
		t.Errorf("task 1 backoff = %g, want 2", p1.PhaseS[PhaseBackoff])
	}
	if p1.PhaseS[PhaseDownlink] != 1 || p1.PhaseS[PhaseColdStart] != 0.5 {
		t.Errorf("task 1 phases wrong: %+v", p1.PhaseS)
	}

	// Task 2: the primary won; the hedge must not contribute. The primary
	// covers [12,20]: uplink [12,13], exec [13,19], downlink [19,20].
	p2 := byTrace[2]
	if p2.PhaseS[PhaseExec] != 6 || p2.PhaseS[PhaseUplink] != 1 || p2.PhaseS[PhaseDownlink] != 1 {
		t.Errorf("task 2 phases wrong: %+v", p2.PhaseS)
	}
	if p2.PhaseS[PhaseBackoff] != 0 {
		t.Errorf("task 2 charged backoff on a hedged run: %+v", p2.PhaseS)
	}
}

// TestAttributeGuards: zero-record and single-record sets must not divide
// by zero anywhere — shares come back zero, not NaN.
func TestAttributeGuards(t *testing.T) {
	cases := []struct {
		name  string
		spans []Span
		tasks int
	}{
		{"empty", nil, 0},
		{"single zero-duration task", []Span{
			{ID: 1, Trace: 1, Name: SpanTask, Backend: "local", Start: 5, End: 5, Status: StatusOK},
		}, 1},
		{"single failed task", []Span{
			{ID: 1, Trace: 1, Name: SpanTask, Backend: "local", Start: 0, End: 3, Status: StatusFailed},
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			att := Attribute(&SpanSet{Spans: tc.spans})
			for _, g := range att.Groups {
				if g.Tasks != tc.tasks && g.Name == "all" {
					t.Fatalf("group all has %d tasks, want %d", g.Tasks, tc.tasks)
				}
				for phase, ps := range g.Phase {
					for _, v := range []float64{ps.MeanS, ps.ShareMean, ps.ShareP50, ps.ShareP95, ps.ShareP99} {
						if v != v || v < 0 || v > 1e18 {
							t.Fatalf("%s/%s produced %g", g.Name, phase, v)
						}
					}
				}
			}
			// Rendering must not panic on degenerate input either.
			_ = att.Table().String()
			_ = ComputeWaste(&SpanSet{Spans: tc.spans}).Table().String()
		})
	}
}

// TestSummarizeGuards: the legacy record summary must handle empty and
// single-record inputs without dividing by zero, and must aggregate the
// new attempts field.
func TestSummarizeGuards(t *testing.T) {
	cases := []struct {
		name         string
		records      []Record
		tasks        int
		missRate     float64
		meanAttempts float64
		retryRate    float64
	}{
		{"empty", nil, 0, 0, 0, 0},
		{"single completed", []Record{
			{TaskID: 1, Placement: "local", Submitted: 0, Finished: 2},
		}, 1, 0, 1, 0},
		{"single failed", []Record{
			{TaskID: 1, Placement: "function", Failed: true, Attempts: 3},
		}, 1, 0, 3, 1},
		{"all missed", []Record{
			{TaskID: 1, Placement: "edge", Finished: 2, Missed: true, Attempts: 2},
			{TaskID: 2, Placement: "edge", Finished: 4, Missed: true},
		}, 2, 1, 1.5, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Summarize(tc.records)
			if s.Tasks != tc.tasks {
				t.Fatalf("tasks = %d, want %d", s.Tasks, tc.tasks)
			}
			if got := s.MissRate(); got != tc.missRate {
				t.Errorf("miss rate = %g, want %g", got, tc.missRate)
			}
			if s.MeanAttempts != tc.meanAttempts {
				t.Errorf("mean attempts = %g, want %g", s.MeanAttempts, tc.meanAttempts)
			}
			if s.RetryRate != tc.retryRate {
				t.Errorf("retry rate = %g, want %g", s.RetryRate, tc.retryRate)
			}
		})
	}
}

// TestRecordAttemptsRoundTrip: the attempts field must survive the
// outcome → record → JSONL → record path (the bug this field fixes was
// its silent loss at the first hop).
func TestRecordAttemptsRoundTrip(t *testing.T) {
	o := model.Outcome{
		Task:      &model.Task{ID: 9, App: "ml-batch"},
		Placement: model.PlaceFunction,
		Started:   1, Finished: 5,
		CostUSD: 0.01, Attempts: 3,
	}
	r := FromOutcome(o)
	if r.Attempts != 3 {
		t.Fatalf("FromOutcome dropped attempts: %+v", r)
	}
	rec := &Recorder{}
	rec.Add(r)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != r {
		t.Fatalf("round trip mutated the record:\nin  %+v\nout %+v", r, back[0])
	}
}
