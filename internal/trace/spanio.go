package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// The span JSONL container format: a header line identifying format and
// version, then one span object per line. The version gates decoding, so
// a reader never silently misinterprets an archive written by a future
// schema.
const (
	SpanFormat  = "offload-spans"
	SpanVersion = 1
)

// SpanSet is one run's spans plus the metadata that travels with them.
type SpanSet struct {
	Run    string
	Policy string
	Spans  []Span
}

type spanHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Run     string `json:"run,omitempty"`
	Policy  string `json:"policy,omitempty"`
}

// WriteJSONL streams the set as a header line followed by one span per
// line.
func (s *SpanSet) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(spanHeader{
		Format: SpanFormat, Version: SpanVersion,
		Run: s.Run, Policy: s.Policy,
	}); err != nil {
		return fmt.Errorf("trace: encoding span header: %w", err)
	}
	for i := range s.Spans {
		if err := enc.Encode(&s.Spans[i]); err != nil {
			return fmt.Errorf("trace: encoding span %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadSpansJSONL parses a span stream written by WriteJSONL. The header
// must come first and carry a known format and version; blank lines are
// skipped; malformed lines abort with a line-numbered error. Spans with
// non-finite or reversed times are rejected so downstream analysis never
// sees an impossible timeline.
func ReadSpansJSONL(r io.Reader) (*SpanSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var set *SpanSet
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		if set == nil {
			var h spanHeader
			if err := json.Unmarshal(text, &h); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad span header: %w", line, err)
			}
			if h.Format != SpanFormat {
				return nil, fmt.Errorf("trace: line %d: format %q is not %q", line, h.Format, SpanFormat)
			}
			if h.Version != SpanVersion {
				return nil, fmt.Errorf("trace: line %d: unsupported span version %d (have %d)", line, h.Version, SpanVersion)
			}
			set = &SpanSet{Run: h.Run, Policy: h.Policy}
			continue
		}
		var sp Span
		if err := json.Unmarshal(text, &sp); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if err := sp.validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		set.Spans = append(set.Spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading spans: %w", err)
	}
	if set == nil {
		return nil, fmt.Errorf("trace: span stream has no header")
	}
	return set, nil
}

// validate rejects spans no recorder can produce.
func (s *Span) validate() error {
	switch {
	case !finite(s.Start) || !finite(s.End):
		return fmt.Errorf("span %d has non-finite times [%g, %g]", s.ID, s.Start, s.End)
	case s.End < s.Start:
		return fmt.Errorf("span %d ends at %g before it starts at %g", s.ID, s.End, s.Start)
	case s.Name == "":
		return fmt.Errorf("span %d has no name", s.ID)
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
