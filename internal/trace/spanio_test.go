package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func recordedSet(t *testing.T) *SpanSet {
	t.Helper()
	r := NewSpanRecorder()
	r.SetMeta("roundtrip", "cloud-all")
	driveRetryHedge(r)
	return r.Set()
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	set := recordedSet(t)
	var buf bytes.Buffer
	if err := set.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(first, SpanFormat) {
		t.Fatalf("first line is not the header: %q", first)
	}
	back, err := ReadSpansJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Run != set.Run || back.Policy != set.Policy {
		t.Fatalf("meta lost: %+v", back)
	}
	if len(back.Spans) != len(set.Spans) {
		t.Fatalf("%d spans back, want %d", len(back.Spans), len(set.Spans))
	}
	for i := range set.Spans {
		if back.Spans[i] != set.Spans[i] {
			t.Fatalf("span %d mutated:\nin  %+v\nout %+v", i, set.Spans[i], back.Spans[i])
		}
	}
}

func TestReadSpansJSONLRejects(t *testing.T) {
	header := `{"format":"offload-spans","version":1}` + "\n"
	cases := []struct {
		name  string
		input string
		want  string // substring of the error
	}{
		{"no header", "", "no header"},
		{"span before header", `{"id":1,"name":"task","start_s":0,"end_s":1}` + "\n", "format"},
		{"wrong format", `{"format":"other","version":1}` + "\n", "format"},
		{"future version", `{"format":"offload-spans","version":2}` + "\n", "version"},
		{"garbage line", header + "not json\n", "line 2"},
		{"reversed span", header + `{"id":1,"name":"task","start_s":5,"end_s":4}` + "\n", "before it starts"},
		{"nameless span", header + `{"id":1,"start_s":0,"end_s":1}` + "\n", "no name"},
		{"nan time", header + `{"id":1,"name":"task","start_s":1e999,"end_s":1}` + "\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSpansJSONL(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("accepted malformed input")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestChromeTraceExport(t *testing.T) {
	set := recordedSet(t)
	var buf bytes.Buffer
	if err := set.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TsUS  float64        `json:"ts"`
			DurUS float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// One metadata event per process: the tasks track and one per backend.
	names := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" {
			names[ev.PID] = ev.Args["name"].(string)
		}
	}
	if names[tasksTrack] != "tasks" {
		t.Fatalf("pid %d named %q, want tasks", tasksTrack, names[tasksTrack])
	}
	if len(names) != 2 || names[tasksTrack+1] != "backend: function" {
		t.Fatalf("process names wrong: %v", names)
	}

	// Per (pid, tid) track, complete-event timestamps must be monotonic
	// and non-overlapping; durations never negative.
	type track struct{ pid, tid int }
	lastEnd := map[track]float64{}
	body := 0
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" {
			continue
		}
		body++
		if ev.Phase != "X" && ev.Phase != "i" {
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
		if ev.DurUS < 0 {
			t.Fatalf("negative duration on %q", ev.Name)
		}
		k := track{ev.PID, ev.TID}
		if ev.Phase == "X" {
			if ev.TsUS < lastEnd[k]-1e-6 {
				t.Fatalf("track %v overlaps: %q starts at %g before %g", k, ev.Name, ev.TsUS, lastEnd[k])
			}
			lastEnd[k] = ev.TsUS + ev.DurUS
		}
	}
	if body != len(set.Spans) {
		t.Fatalf("%d body events, want %d spans", body, len(set.Spans))
	}

	// Determinism: a second export is byte-identical.
	var again bytes.Buffer
	if err := set.WriteChromeTrace(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("chrome export is not deterministic")
	}
}
