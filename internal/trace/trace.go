// Package trace records task lifecycles as structured records and
// round-trips them through JSON Lines, so runs can be archived, diffed
// across framework versions (the CI/CD regression check), and replayed.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"offload/internal/model"
	"offload/internal/sim"
)

// Record is one completed (or failed) task, flattened for serialisation.
type Record struct {
	TaskID    uint64  `json:"task_id"`
	App       string  `json:"app,omitempty"`
	Placement string  `json:"placement"`
	Submitted float64 `json:"submitted_s"`
	Finished  float64 `json:"finished_s"`

	// Task shape, kept so a trace can be replayed as a workload.
	Cycles      float64 `json:"cycles,omitempty"`
	InputBytes  int64   `json:"input_bytes,omitempty"`
	OutputBytes int64   `json:"output_bytes,omitempty"`
	MemoryBytes int64   `json:"memory_bytes,omitempty"`
	DeadlineS   float64 `json:"deadline_s,omitempty"`
	ParallelFr  float64 `json:"parallel_fraction,omitempty"`

	UplinkS    float64 `json:"uplink_s,omitempty"`
	DownlinkS  float64 `json:"downlink_s,omitempty"`
	ExecS      float64 `json:"exec_s,omitempty"`
	QueueS     float64 `json:"queue_s,omitempty"`
	ColdStartS float64 `json:"cold_start_s,omitempty"`

	CostUSD      float64 `json:"cost_usd,omitempty"`
	EnergyMilliJ float64 `json:"energy_mj,omitempty"`

	// Attempts is how many dispatches the task took (retries and hedges
	// included); 0 in traces written before the field existed, which
	// readers treat as 1.
	Attempts int `json:"attempts,omitempty"`

	Missed bool `json:"missed,omitempty"`
	Failed bool `json:"failed,omitempty"`
}

// FromOutcome flattens a scheduler outcome.
func FromOutcome(o model.Outcome) Record {
	r := Record{
		Placement:    o.Placement.String(),
		Submitted:    float64(o.Started),
		Finished:     float64(o.Finished),
		UplinkS:      float64(o.UplinkTime),
		DownlinkS:    float64(o.DownlinkTime),
		ExecS:        float64(o.Exec.Duration()),
		QueueS:       float64(o.Exec.QueueWait),
		ColdStartS:   float64(o.Exec.ColdStart),
		CostUSD:      o.CostUSD,
		EnergyMilliJ: o.EnergyMilliJ,
		Attempts:     o.Attempts,
		Missed:       o.MissedDeadline(),
		Failed:       o.Failed,
	}
	if o.Task != nil {
		r.TaskID = uint64(o.Task.ID)
		r.App = o.Task.App
		r.Cycles = o.Task.Cycles
		r.InputBytes = o.Task.InputBytes
		r.OutputBytes = o.Task.OutputBytes
		r.MemoryBytes = o.Task.MemoryBytes
		r.DeadlineS = float64(o.Task.Deadline)
		r.ParallelFr = o.Task.ParallelFraction
	}
	return r
}

// Task reconstructs the recorded task (without its outcome).
func (r Record) Task() *model.Task {
	return &model.Task{
		ID:               model.TaskID(r.TaskID),
		App:              r.App,
		InputBytes:       r.InputBytes,
		OutputBytes:      r.OutputBytes,
		Cycles:           r.Cycles,
		MemoryBytes:      r.MemoryBytes,
		ParallelFraction: r.ParallelFr,
		Deadline:         sim.Duration(r.DeadlineS),
		Submitted:        sim.Time(r.Submitted),
	}
}

// Replay schedules every record's task at its recorded submission time,
// invoking submit for each — trace-driven workload replay. Records whose
// submission time is in the engine's past are rejected.
func Replay(eng *sim.Engine, records []Record, submit func(*model.Task)) error {
	if submit == nil {
		return fmt.Errorf("trace: Replay with nil submit")
	}
	for i, r := range records {
		at := sim.Time(r.Submitted)
		if at < eng.Now() {
			return fmt.Errorf("trace: record %d submitted at %v, before engine time %v", i, at, eng.Now())
		}
		task := r.Task()
		eng.At(at, func() { submit(task) })
	}
	return nil
}

// CompletionS returns the end-to-end completion time in seconds.
func (r Record) CompletionS() float64 { return r.Finished - r.Submitted }

// Recorder accumulates records; plug Hook into a scheduler.
type Recorder struct {
	records []Record
}

// Hook returns an outcome callback that appends to the recorder.
func (rec *Recorder) Hook() func(model.Outcome) {
	return func(o model.Outcome) {
		rec.records = append(rec.records, FromOutcome(o))
	}
}

// Add appends a record directly.
func (rec *Recorder) Add(r Record) { rec.records = append(rec.records, r) }

// Len returns the number of records.
func (rec *Recorder) Len() int { return len(rec.records) }

// Records returns a copy of the accumulated records.
func (rec *Recorder) Records() []Record {
	cp := make([]Record, len(rec.records))
	copy(cp, rec.records)
	return cp
}

// WriteJSONL streams the records as one JSON object per line.
func (rec *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range rec.records {
		if err := enc.Encode(&rec.records[i]); err != nil {
			return fmt.Errorf("trace: encoding record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses records from a JSON Lines stream. Blank lines are
// skipped; malformed lines abort with a line-numbered error.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return out, nil
}

// Summary holds aggregate statistics over a set of records, the quantities
// compared by the CI/CD SLO gate.
type Summary struct {
	Tasks          int
	Failed         int
	Missed         int
	MeanCompletion float64
	TotalCostUSD   float64
	TotalEnergyMJ  float64

	// MeanAttempts is the mean dispatch count per task; RetryRate is the
	// fraction of tasks that needed more than one. Records without an
	// attempts field (pre-existing traces) count as single-attempt.
	MeanAttempts float64
	RetryRate    float64
}

// Summarize aggregates records. Cost and energy accumulate for every
// record including failures — failed tasks were still billed for the
// attempts they made, and the SLO gate must see that spend.
func Summarize(records []Record) Summary {
	var s Summary
	sum := 0.0
	attempts, retried := 0, 0
	for _, r := range records {
		s.Tasks++
		s.TotalCostUSD += r.CostUSD
		s.TotalEnergyMJ += r.EnergyMilliJ
		a := r.Attempts
		if a < 1 {
			a = 1
		}
		attempts += a
		if a > 1 {
			retried++
		}
		if r.Failed {
			s.Failed++
			continue
		}
		if r.Missed {
			s.Missed++
		}
		sum += r.CompletionS()
	}
	if n := s.Tasks - s.Failed; n > 0 {
		s.MeanCompletion = sum / float64(n)
	}
	if s.Tasks > 0 {
		s.MeanAttempts = float64(attempts) / float64(s.Tasks)
		s.RetryRate = float64(retried) / float64(s.Tasks)
	}
	return s
}

// MissRate returns the deadline-miss fraction among completed tasks.
func (s Summary) MissRate() float64 {
	n := s.Tasks - s.Failed
	if n == 0 {
		return 0
	}
	return float64(s.Missed) / float64(n)
}
