package trace

import (
	"bytes"
	"strings"
	"testing"

	"offload/internal/model"
	"offload/internal/sim"
)

func sample() Record {
	return Record{
		TaskID: 7, App: "video-transcode", Placement: "function",
		Submitted: 10, Finished: 25.5,
		UplinkS: 1.2, DownlinkS: 0.3, ExecS: 14, ColdStartS: 0.4,
		CostUSD: 0.00012, EnergyMilliJ: 820,
	}
}

func TestFromOutcome(t *testing.T) {
	task := &model.Task{ID: 3, App: "x", Deadline: 5}
	o := model.Outcome{
		Task: task, Placement: model.PlaceFunction,
		Started: 1, Finished: 10, // misses the 5 s deadline
		UplinkTime: 0.5, DownlinkTime: 0.25,
		Exec:    model.ExecReport{Start: 2, End: 9, ColdStart: 0.3, QueueWait: 0.1, CostUSD: 1e-5},
		CostUSD: 1e-5, EnergyMilliJ: 44,
	}
	r := FromOutcome(o)
	if r.TaskID != 3 || r.App != "x" || r.Placement != "function" {
		t.Fatalf("identity fields wrong: %+v", r)
	}
	if r.CompletionS() != 9 {
		t.Fatalf("CompletionS = %g", r.CompletionS())
	}
	if !r.Missed {
		t.Fatal("miss not recorded")
	}
	if r.ExecS != 7 || r.ColdStartS != 0.3 {
		t.Fatalf("exec fields wrong: %+v", r)
	}
}

func TestRecorderHook(t *testing.T) {
	var rec Recorder
	hook := rec.Hook()
	hook(model.Outcome{Task: &model.Task{ID: 1}, Placement: model.PlaceLocal})
	hook(model.Outcome{Task: &model.Task{ID: 2}, Placement: model.PlaceEdge, Failed: true})
	if rec.Len() != 2 {
		t.Fatalf("Len = %d", rec.Len())
	}
	records := rec.Records()
	records[0].TaskID = 999
	if rec.Records()[0].TaskID == 999 {
		t.Fatal("Records returned aliased storage")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var rec Recorder
	rec.Add(sample())
	r2 := sample()
	r2.TaskID = 8
	r2.Failed = true
	rec.Add(r2)

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d records", len(back))
	}
	if back[0] != sample() || back[1] != r2 {
		t.Fatalf("round trip changed records:\n%+v\n%+v", back[0], back[1])
	}
}

func TestReadJSONLSkipsBlanksAndReportsErrors(t *testing.T) {
	in := "\n" + `{"task_id":1,"placement":"local","submitted_s":0,"finished_s":1}` + "\n\n"
	recs, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	_, err = ReadJSONL(strings.NewReader("{bad json}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("malformed line error = %v", err)
	}
}

func TestSummarize(t *testing.T) {
	records := []Record{
		{Submitted: 0, Finished: 10, CostUSD: 1, EnergyMilliJ: 5},
		{Submitted: 0, Finished: 20, CostUSD: 2, Missed: true},
		{Submitted: 0, Finished: 99, Failed: true},
	}
	s := Summarize(records)
	if s.Tasks != 3 || s.Failed != 1 || s.Missed != 1 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.MeanCompletion != 15 {
		t.Fatalf("MeanCompletion = %g, want 15 (failures excluded)", s.MeanCompletion)
	}
	if s.TotalCostUSD != 3 || s.TotalEnergyMJ != 5 {
		t.Fatalf("totals wrong: %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Fatalf("MissRate = %g, want 0.5", s.MissRate())
	}
}

// TestSummarizeCountsFailedSpend: money and energy sunk into failed tasks
// must reach the totals — the SLO gate compares spend against budgets, and
// failed attempts were still billed.
func TestSummarizeCountsFailedSpend(t *testing.T) {
	records := []Record{
		{Submitted: 0, Finished: 10, CostUSD: 1, EnergyMilliJ: 5},
		{Submitted: 0, Finished: 99, Failed: true, CostUSD: 2, EnergyMilliJ: 7},
	}
	s := Summarize(records)
	if s.TotalCostUSD != 3 {
		t.Fatalf("TotalCostUSD = %g, want 3 (failed task's $2 dropped)", s.TotalCostUSD)
	}
	if s.TotalEnergyMJ != 12 {
		t.Fatalf("TotalEnergyMJ = %g, want 12 (failed task's energy dropped)", s.TotalEnergyMJ)
	}
	if s.MeanCompletion != 10 {
		t.Fatalf("MeanCompletion = %g, want 10 (failures still excluded from latency)", s.MeanCompletion)
	}
}

func TestRecordTaskRoundTrip(t *testing.T) {
	task := &model.Task{
		ID: 9, App: "x", InputBytes: 100, OutputBytes: 50,
		Cycles: 3e9, MemoryBytes: 1 << 28, ParallelFraction: 0.6,
		Deadline: 120, Submitted: 42,
	}
	r := FromOutcome(model.Outcome{Task: task, Placement: model.PlaceFunction, Started: 42, Finished: 50})
	back := r.Task()
	if *back != *task {
		t.Fatalf("task round trip changed:\n%+v\n%+v", back, task)
	}
}

func TestReplaySchedulesAtRecordedTimes(t *testing.T) {
	eng := sim.NewEngine()
	records := []Record{
		{TaskID: 1, App: "a", Cycles: 1, Submitted: 5},
		{TaskID: 2, App: "a", Cycles: 1, Submitted: 2},
		{TaskID: 3, App: "b", Cycles: 1, Submitted: 9},
	}
	var got []sim.Time
	var ids []uint64
	if err := Replay(eng, records, func(task *model.Task) {
		got = append(got, eng.Now())
		ids = append(ids, uint64(task.ID))
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := []sim.Time{2, 5, 9}
	wantIDs := []uint64{2, 1, 3}
	for i := range want {
		if got[i] != want[i] || ids[i] != wantIDs[i] {
			t.Fatalf("replay order: times %v ids %v", got, ids)
		}
	}
}

func TestReplayRejectsPastRecords(t *testing.T) {
	eng := sim.NewEngine()
	eng.At(10, func() {})
	eng.Run() // now = 10
	err := Replay(eng, []Record{{Submitted: 5}}, func(*model.Task) {})
	if err == nil {
		t.Fatal("past record accepted")
	}
	if err := Replay(eng, nil, nil); err == nil {
		t.Fatal("nil submit accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Tasks != 0 || s.MeanCompletion != 0 || s.MissRate() != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}
