package workload

import (
	"fmt"

	"offload/internal/callgraph"
	"offload/internal/dag"
	"offload/internal/rng"
	"offload/internal/sim"
)

// JobShape names a generated DAG family.
type JobShape string

// The generator shapes: a serial chain (maximum depth, no parallelism),
// a fork-join (maximum width), and random layered DAGs between the two.
const (
	ShapePipeline JobShape = "pipeline"
	ShapeForkJoin JobShape = "fork-join"
	ShapeLayered  JobShape = "layered"
)

// JobTemplate describes a population of DAG jobs of one shape.
type JobTemplate struct {
	App   string
	Shape JobShape
	Nodes int // nodes per job
	Width int // layered: max nodes per layer (≥1); other shapes ignore it

	MeanCycles  float64 // mean demand per node
	CyclesSigma float64 // lognormal dispersion of node sizes

	EdgeBytes   int64 // payload per precedence edge
	InputBytes  int64 // job-external input per entry node
	OutputBytes int64 // job-external output per exit node

	MemoryBytes      int64
	ParallelFraction float64
	Deadline         sim.Duration // whole-job soft deadline; 0 = none
}

// Validate reports whether the template is usable.
func (t JobTemplate) Validate() error {
	switch {
	case t.App == "":
		return fmt.Errorf("workload: job template without app name")
	case t.Shape != ShapePipeline && t.Shape != ShapeForkJoin && t.Shape != ShapeLayered:
		return fmt.Errorf("workload: %s: unknown job shape %q", t.App, t.Shape)
	case t.Nodes < 1:
		return fmt.Errorf("workload: %s: job needs at least one node", t.App)
	case t.Shape == ShapeLayered && t.Width < 1:
		return fmt.Errorf("workload: %s: layered jobs need Width >= 1", t.App)
	case t.MeanCycles <= 0:
		return fmt.Errorf("workload: %s: node demand must be positive", t.App)
	case t.CyclesSigma < 0:
		return fmt.Errorf("workload: %s: negative dispersion", t.App)
	case t.EdgeBytes < 0 || t.InputBytes < 0 || t.OutputBytes < 0 || t.MemoryBytes < 0:
		return fmt.Errorf("workload: %s: negative sizes", t.App)
	case t.ParallelFraction < 0 || t.ParallelFraction > 1:
		return fmt.Errorf("workload: %s: parallel fraction outside [0,1]", t.App)
	case t.Deadline < 0:
		return fmt.Errorf("workload: %s: negative deadline", t.App)
	}
	return nil
}

// JobGenerator draws DAG jobs from one template. All structure and size
// variation comes from its rng stream, so a given (seed, template) pair
// always yields the same job sequence.
type JobGenerator struct {
	src  *rng.Source
	tmpl JobTemplate
	made uint64
}

// NewJobGenerator returns a generator over the template.
func NewJobGenerator(src *rng.Source, tmpl JobTemplate) (*JobGenerator, error) {
	if err := tmpl.Validate(); err != nil {
		return nil, err
	}
	return &JobGenerator{src: src, tmpl: tmpl}, nil
}

// Generated returns how many jobs have been drawn.
func (g *JobGenerator) Generated() uint64 { return g.made }

// Next draws one job. The node count and shape come from the template;
// per-node demand scales by a unit-mean lognormal factor, and layered
// shapes draw their cross-layer edges from the generator's stream.
func (g *JobGenerator) Next() *dag.Job {
	t := g.tmpl
	g.made++

	// Per-node demand first, in index order, so the draw sequence is
	// independent of how many edges the shape adds afterwards.
	cycles := make([]float64, t.Nodes)
	for i := range cycles {
		scale := 1.0
		if t.CyclesSigma > 0 {
			scale = g.src.LogNormal(-t.CyclesSigma*t.CyclesSigma/2, t.CyclesSigma)
		}
		cycles[i] = t.MeanCycles * scale
	}

	var edges [][2]int
	switch t.Shape {
	case ShapePipeline:
		for i := 0; i+1 < t.Nodes; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
	case ShapeForkJoin:
		// Entry fans out to Nodes−2 parallel branches joined by an exit;
		// fewer than three nodes degenerate to a chain.
		if t.Nodes < 3 {
			for i := 0; i+1 < t.Nodes; i++ {
				edges = append(edges, [2]int{i, i + 1})
			}
			break
		}
		sink := t.Nodes - 1
		for b := 1; b < sink; b++ {
			edges = append(edges, [2]int{0, b}, [2]int{b, sink})
		}
	case ShapeLayered:
		edges = g.layeredEdges(t.Nodes, t.Width)
	}

	hasPred := make([]bool, t.Nodes)
	hasSucc := make([]bool, t.Nodes)
	for _, e := range edges {
		hasSucc[e[0]] = true
		hasPred[e[1]] = true
	}

	job := dag.New(t.App, t.Deadline)
	for i := 0; i < t.Nodes; i++ {
		n := dag.Node{
			Name:             fmt.Sprintf("n%02d", i),
			Cycles:           cycles[i],
			MemoryBytes:      t.MemoryBytes,
			ParallelFraction: t.ParallelFraction,
		}
		if !hasPred[i] {
			n.InputBytes = t.InputBytes
		}
		if !hasSucc[i] {
			n.OutputBytes = t.OutputBytes
		}
		job.MustAddNode(n)
	}
	for _, e := range edges {
		job.MustAddEdge(dag.Edge{From: dag.NodeID(e[0]), To: dag.NodeID(e[1]), Bytes: t.EdgeBytes})
	}
	return job
}

// layeredEdges connects consecutive layers of up to width nodes: every
// node picks one random predecessor in the previous layer, and every
// previous-layer node without a successor adopts a random next-layer
// node, so the graph has no stranded interior nodes.
func (g *JobGenerator) layeredEdges(nodes, width int) [][2]int {
	layerOf := func(i int) int { return i / width }
	layers := layerOf(nodes-1) + 1
	start := func(l int) int { return l * width }
	end := func(l int) int { // one past the layer's last node
		e := (l + 1) * width
		if e > nodes {
			e = nodes
		}
		return e
	}

	var edges [][2]int
	have := make(map[[2]int]bool)
	add := func(from, to int) {
		e := [2]int{from, to}
		if !have[e] {
			have[e] = true
			edges = append(edges, e)
		}
	}
	for l := 1; l < layers; l++ {
		ps, pe := start(l-1), end(l-1)
		for i := start(l); i < end(l); i++ {
			add(ps+g.src.Intn(pe-ps), i)
		}
		for p := ps; p < pe; p++ {
			linked := false
			for _, e := range edges {
				if e[0] == p {
					linked = true
					break
				}
			}
			if !linked {
				add(p, start(l)+g.src.Intn(end(l)-start(l)))
			}
		}
	}
	return edges
}

// JobFromGraph converts an application call graph into a DAG job: each
// non-pinned component becomes a node (demand = Cycles × CallsPerRun,
// the FromGraph derivation), interior edges become precedence edges, and
// edges crossing the pinned boundary become the adjacent node's
// job-external input/output. The offloadable interior must be acyclic —
// the pinned anchors that close the call graph's loops stay on the
// device, outside the job.
func JobFromGraph(g *callgraph.Graph) (*dag.Job, error) {
	// FromGraph validates the graph, proves there is offloadable work and
	// supplies the per-application deadline.
	tmpl, err := FromGraph(g)
	if err != nil {
		return nil, err
	}

	comps := g.Components()
	type payload struct{ in, out, interior map[int]int64 }
	p := payload{in: map[int]int64{}, out: map[int]int64{}, interior: map[int]int64{}}
	interiorKey := func(from, to int) int { return from*len(comps) + to }
	for _, e := range g.Edges() {
		bytes := int64(float64(e.Bytes) * e.CallsPerRun)
		fromPinned, toPinned := comps[e.From].Pinned, comps[e.To].Pinned
		switch {
		case fromPinned && toPinned:
			// Device-internal traffic; the job never sees it.
		case fromPinned:
			p.in[int(e.To)] += bytes
		case toPinned:
			p.out[int(e.From)] += bytes
		default:
			// Parallel edges merge: the job carries one edge per pair.
			p.interior[interiorKey(int(e.From), int(e.To))] += bytes
		}
	}

	job := dag.New(g.Name(), tmpl.Deadline)
	idmap := make(map[int]dag.NodeID)
	for ci, c := range comps {
		if c.Pinned {
			continue
		}
		id, err := job.AddNode(dag.Node{
			Name:             c.Name,
			Cycles:           c.Cycles * c.CallsPerRun,
			MemoryBytes:      c.MemoryBytes,
			InputBytes:       p.in[ci],
			OutputBytes:      p.out[ci],
			ParallelFraction: c.ParallelFraction,
		})
		if err != nil {
			return nil, err
		}
		idmap[ci] = id
	}
	for ci := range comps {
		for cj := range comps {
			bytes, ok := p.interior[interiorKey(ci, cj)]
			if !ok {
				continue
			}
			if err := job.AddEdge(dag.Edge{From: idmap[ci], To: idmap[cj], Bytes: bytes}); err != nil {
				return nil, err
			}
		}
	}
	if err := job.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s: offloadable interior is not a DAG: %w", g.Name(), err)
	}
	return job, nil
}

// JobStream schedules count job arrivals on eng, drawing gaps from
// arrivals and jobs from gen, invoking submit for each — Stream for DAG
// workloads.
func JobStream(eng *sim.Engine, arrivals Arrivals, gen *JobGenerator, count int, submit func(*dag.Job)) {
	if count <= 0 {
		return
	}
	var arrive func()
	remaining := count
	arrive = func() {
		job := gen.Next()
		remaining--
		submit(job)
		if remaining > 0 {
			eng.After(arrivals.Next(eng.Now()), arrive)
		}
	}
	eng.After(arrivals.Next(eng.Now()), arrive)
}
