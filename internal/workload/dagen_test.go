package workload

import (
	"math"
	"testing"

	"offload/internal/callgraph"
	"offload/internal/dag"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/sim"
)

func pipelineTemplate() JobTemplate {
	return JobTemplate{
		App: "dagtest", Shape: ShapePipeline, Nodes: 5,
		MeanCycles: 1e9, CyclesSigma: 0.3,
		EdgeBytes: 64 << 10, InputBytes: 1 << 20, OutputBytes: 1 << 19,
		Deadline: 600,
	}
}

func TestJobTemplateValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*JobTemplate)
	}{
		{"no app", func(j *JobTemplate) { j.App = "" }},
		{"bad shape", func(j *JobTemplate) { j.Shape = "ring" }},
		{"zero nodes", func(j *JobTemplate) { j.Nodes = 0 }},
		{"zero cycles", func(j *JobTemplate) { j.MeanCycles = 0 }},
		{"negative sigma", func(j *JobTemplate) { j.CyclesSigma = -1 }},
		{"negative bytes", func(j *JobTemplate) { j.EdgeBytes = -1 }},
		{"bad fraction", func(j *JobTemplate) { j.ParallelFraction = 1.5 }},
		{"negative deadline", func(j *JobTemplate) { j.Deadline = -1 }},
		{"layered without width", func(j *JobTemplate) { j.Shape = ShapeLayered; j.Width = 0 }},
	}
	for _, tc := range cases {
		tmpl := pipelineTemplate()
		tc.mut(&tmpl)
		if _, err := NewJobGenerator(rng.New(1), tmpl); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewJobGenerator(rng.New(1), pipelineTemplate()); err != nil {
		t.Fatalf("valid template rejected: %v", err)
	}
}

func TestJobGeneratorShapes(t *testing.T) {
	degree := func(j *dag.Job) (in, out map[dag.NodeID]int) {
		in, out = map[dag.NodeID]int{}, map[dag.NodeID]int{}
		for _, e := range j.Edges() {
			out[e.From]++
			in[e.To]++
		}
		return
	}

	t.Run("pipeline", func(t *testing.T) {
		gen, err := NewJobGenerator(rng.New(2), pipelineTemplate())
		if err != nil {
			t.Fatal(err)
		}
		j := gen.Next()
		if err := j.Validate(); err != nil {
			t.Fatalf("generated job invalid: %v", err)
		}
		if j.Len() != 5 || len(j.Edges()) != 4 {
			t.Fatalf("pipeline has %d nodes / %d edges, want 5/4", j.Len(), len(j.Edges()))
		}
		in, out := degree(j)
		for id := dag.NodeID(0); id < 5; id++ {
			if id > 0 && in[id] != 1 {
				t.Errorf("node %d in-degree %d, want 1", id, in[id])
			}
			if id < 4 && out[id] != 1 {
				t.Errorf("node %d out-degree %d, want 1", id, out[id])
			}
		}
		// Entry carries external input, exit external output, interior none.
		if n := j.Node(0); n.InputBytes != 1<<20 {
			t.Errorf("entry InputBytes %d, want %d", n.InputBytes, 1<<20)
		}
		if n := j.Node(4); n.OutputBytes != 1<<19 {
			t.Errorf("exit OutputBytes %d, want %d", n.OutputBytes, 1<<19)
		}
		if n := j.Node(2); n.InputBytes != 0 || n.OutputBytes != 0 {
			t.Errorf("interior node carries external bytes: %+v", n)
		}
	})

	t.Run("fork-join", func(t *testing.T) {
		tmpl := pipelineTemplate()
		tmpl.Shape = ShapeForkJoin
		tmpl.Nodes = 8
		gen, err := NewJobGenerator(rng.New(3), tmpl)
		if err != nil {
			t.Fatal(err)
		}
		j := gen.Next()
		if err := j.Validate(); err != nil {
			t.Fatalf("generated job invalid: %v", err)
		}
		in, out := degree(j)
		if out[0] != 6 || in[7] != 6 {
			t.Fatalf("fork-join entry out=%d exit in=%d, want 6/6", out[0], in[7])
		}
		for id := dag.NodeID(1); id < 7; id++ {
			if in[id] != 1 || out[id] != 1 {
				t.Errorf("branch %d degree in=%d out=%d, want 1/1", id, in[id], out[id])
			}
		}
	})

	t.Run("fork-join degenerates", func(t *testing.T) {
		tmpl := pipelineTemplate()
		tmpl.Shape = ShapeForkJoin
		tmpl.Nodes = 2
		gen, err := NewJobGenerator(rng.New(4), tmpl)
		if err != nil {
			t.Fatal(err)
		}
		j := gen.Next()
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.Len() != 2 || len(j.Edges()) != 1 {
			t.Fatalf("2-node fork-join: %d nodes / %d edges, want 2/1", j.Len(), len(j.Edges()))
		}
	})

	t.Run("layered", func(t *testing.T) {
		tmpl := pipelineTemplate()
		tmpl.Shape = ShapeLayered
		tmpl.Nodes = 12
		tmpl.Width = 3
		gen, err := NewJobGenerator(rng.New(5), tmpl)
		if err != nil {
			t.Fatal(err)
		}
		for draw := 0; draw < 20; draw++ {
			j := gen.Next()
			if err := j.Validate(); err != nil {
				t.Fatalf("draw %d invalid: %v", draw, err)
			}
			in, out := degree(j)
			// Interior nodes are never stranded: everyone below the top
			// layer has a predecessor, everyone above the bottom layer a
			// successor.
			for id := dag.NodeID(3); id < 12; id++ {
				if in[id] == 0 {
					t.Fatalf("draw %d: node %d below top layer has no predecessor", draw, id)
				}
			}
			for id := dag.NodeID(0); id < 9; id++ {
				if out[id] == 0 {
					t.Fatalf("draw %d: node %d above bottom layer has no successor", draw, id)
				}
			}
			// Edges only link consecutive layers.
			for _, e := range j.Edges() {
				if int(e.To)/3-int(e.From)/3 != 1 {
					t.Fatalf("draw %d: edge %v crosses non-adjacent layers", draw, e)
				}
			}
		}
	})
}

func TestJobGeneratorDeterministicAndUnbiased(t *testing.T) {
	tmpl := pipelineTemplate()
	a, _ := NewJobGenerator(rng.New(11), tmpl)
	b, _ := NewJobGenerator(rng.New(11), tmpl)
	for i := 0; i < 10; i++ {
		ja, jb := a.Next(), b.Next()
		for id := dag.NodeID(0); id < dag.NodeID(tmpl.Nodes); id++ {
			if ja.Node(id).Cycles != jb.Node(id).Cycles {
				t.Fatalf("draw %d node %d: same-seeded generators diverged", i, id)
			}
		}
	}
	if a.Generated() != 10 {
		t.Fatalf("Generated = %d, want 10", a.Generated())
	}

	// Unit-mean lognormal scaling keeps the mean node demand on template.
	gen, _ := NewJobGenerator(rng.New(12), tmpl)
	sum, n := 0.0, 0
	for i := 0; i < 4000; i++ {
		j := gen.Next()
		for id := dag.NodeID(0); id < dag.NodeID(tmpl.Nodes); id++ {
			sum += j.Node(id).Cycles
			n++
		}
	}
	mean := sum / float64(n)
	if math.Abs(mean-tmpl.MeanCycles)/tmpl.MeanCycles > 0.02 {
		t.Fatalf("mean node demand %g, want ~%g", mean, tmpl.MeanCycles)
	}
}

func TestJobFromGraphMatchesFromGraph(t *testing.T) {
	for _, name := range callgraph.TemplateNames() {
		g := callgraph.Templates()[name]
		tmpl, err := FromGraph(g)
		if err != nil {
			t.Fatalf("%s: FromGraph: %v", name, err)
		}
		job, err := JobFromGraph(g)
		if err != nil {
			t.Fatalf("%s: JobFromGraph: %v", name, err)
		}
		if job.App() != g.Name() || job.Deadline() != tmpl.Deadline {
			t.Errorf("%s: app/deadline mismatch", name)
		}
		// Total node demand equals the flat template's offloadable demand.
		if got := job.TotalCycles(); math.Abs(got-tmpl.MeanCycles) > 1e-6*tmpl.MeanCycles {
			t.Errorf("%s: job demand %g, template %g", name, got, tmpl.MeanCycles)
		}
		// Boundary bytes are conserved: summed external input/output across
		// nodes equals the flat template's payloads.
		var in, out int64
		for _, n := range job.Nodes() {
			in += n.InputBytes
			out += n.OutputBytes
		}
		if in != tmpl.InputBytes || out != tmpl.OutputBytes {
			t.Errorf("%s: boundary bytes (%d, %d), template (%d, %d)",
				name, in, out, tmpl.InputBytes, tmpl.OutputBytes)
		}
	}
}

func TestJobFromGraphRejectsCyclicInterior(t *testing.T) {
	g := callgraph.New("cyclic-app")
	a := g.MustAddComponent(callgraph.Component{Name: "a", Cycles: 1e9, CallsPerRun: 1})
	b := g.MustAddComponent(callgraph.Component{Name: "b", Cycles: 1e9, CallsPerRun: 1})
	g.MustAddEdge(callgraph.Edge{From: a, To: b, Bytes: 1, CallsPerRun: 1})
	g.MustAddEdge(callgraph.Edge{From: b, To: a, Bytes: 1, CallsPerRun: 1})
	if _, err := JobFromGraph(g); err == nil {
		t.Fatal("cyclic offloadable interior accepted")
	}
}

func TestJobStream(t *testing.T) {
	eng := sim.NewEngine()
	gen, err := NewJobGenerator(rng.New(13), pipelineTemplate())
	if err != nil {
		t.Fatal(err)
	}
	var got []*dag.Job
	JobStream(eng, &Fixed{Gap: 2}, gen, 4, func(j *dag.Job) { got = append(got, j) })
	eng.Run()
	if len(got) != 4 {
		t.Fatalf("submitted %d jobs, want 4", len(got))
	}
	if eng.Now() != 8 {
		t.Fatalf("last arrival at %v, want 8", eng.Now())
	}

	// Zero and negative counts schedule nothing.
	JobStream(eng, &Fixed{Gap: 1}, gen, 0, func(*dag.Job) { t.Fatal("submitted") })
	JobStream(eng, &Fixed{Gap: 1}, gen, -3, func(*dag.Job) { t.Fatal("submitted") })
	eng.Run()
}

// --- satellite: Stream early-stop and Clone ID-base coverage ----------

func TestStreamHaltStopsEarly(t *testing.T) {
	eng := sim.NewEngine()
	gen, err := StandardMix(rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	Stream(eng, &Fixed{Gap: 1}, gen, 100, func(*model.Task) {
		n++
		if n == 7 {
			eng.Halt()
		}
	})
	eng.Run()
	if n != 7 {
		t.Fatalf("submitted %d tasks after halt at 7, want 7", n)
	}
	if gen.Generated() != 7 {
		t.Fatalf("generator drew %d tasks, want 7", gen.Generated())
	}
	// The engine can resume: the stream's pending arrival continues.
	eng.Run()
	if n != 100 {
		t.Fatalf("submitted %d tasks after resume, want 100", n)
	}
}

func TestCloneBaseCollisions(t *testing.T) {
	gen, err := StandardMix(rng.New(15))
	if err != nil {
		t.Fatal(err)
	}

	// Disjoint ue<<32 bases keep IDs globally unique across shards.
	const perUE = 100
	seen := map[model.TaskID]bool{}
	for ue := 0; ue < 4; ue++ {
		c := gen.Clone(rng.New(uint64(20+ue)), model.TaskID(ue)<<32)
		for i := 0; i < perUE; i++ {
			id := c.Next(0).ID
			if seen[id] {
				t.Fatalf("ue %d draw %d: duplicate ID %d across disjoint bases", ue, i, id)
			}
			seen[id] = true
		}
	}

	// Overlapping bases collide — the documented contract is that callers
	// must keep bases disjoint; this pins the failure mode the sharded
	// fleet's ue<<32 scheme exists to avoid.
	c1 := gen.Clone(rng.New(30), 0)
	c2 := gen.Clone(rng.New(31), perUE/2)
	ids := map[model.TaskID]bool{}
	for i := 0; i < perUE; i++ {
		ids[c1.Next(0).ID] = true
	}
	collided := false
	for i := 0; i < perUE; i++ {
		if ids[c2.Next(0).ID] {
			collided = true
			break
		}
	}
	if !collided {
		t.Fatal("overlapping clone bases did not collide; the disjointness requirement is untested")
	}
}
