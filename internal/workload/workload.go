// Package workload generates the task streams the evaluation runs on:
// stochastic arrival processes (Poisson, bursty MMPP, diurnal) and task
// populations derived from the callgraph application templates, with
// lognormal size variation and per-application soft deadlines in the
// minutes-to-hours range that defines "non-time-critical".
package workload

import (
	"fmt"
	"math"

	"offload/internal/callgraph"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/sim"
)

// Arrivals produces inter-arrival gaps. Implementations may depend on the
// current virtual time (diurnal patterns do).
type Arrivals interface {
	// Next returns the gap between the arrival at now and the next one.
	Next(now sim.Time) sim.Duration
}

// Poisson is a homogeneous Poisson process.
type Poisson struct {
	src  *rng.Source
	rate float64
}

var _ Arrivals = (*Poisson)(nil)

// NewPoisson returns a Poisson process with the given rate per second.
// It panics if rate <= 0.
func NewPoisson(src *rng.Source, rate float64) *Poisson {
	if rate <= 0 {
		panic(fmt.Sprintf("workload: Poisson rate %g not positive", rate))
	}
	return &Poisson{src: src, rate: rate}
}

// Next implements Arrivals.
func (p *Poisson) Next(sim.Time) sim.Duration {
	return sim.Duration(p.src.Exp(p.rate))
}

// MMPP is a two-state Markov-modulated Poisson process: a calm state and a
// burst state with different rates, switching with exponential sojourns.
type MMPP struct {
	src                 *rng.Source
	calmRate, burstRate float64
	toBurst, toCalm     float64 // state-switch rates per second
	burst               bool
	stateLeft           sim.Duration // remaining sojourn in current state
}

var _ Arrivals = (*MMPP)(nil)

// NewMMPP returns an MMPP starting in the calm state. All rates must be
// positive.
func NewMMPP(src *rng.Source, calmRate, burstRate, toBurst, toCalm float64) *MMPP {
	if calmRate <= 0 || burstRate <= 0 || toBurst <= 0 || toCalm <= 0 {
		panic(fmt.Sprintf("workload: MMPP rates must be positive (%g %g %g %g)",
			calmRate, burstRate, toBurst, toCalm))
	}
	m := &MMPP{src: src, calmRate: calmRate, burstRate: burstRate, toBurst: toBurst, toCalm: toCalm}
	m.stateLeft = sim.Duration(src.Exp(toBurst))
	return m
}

// Next implements Arrivals by racing the next arrival against state
// switches.
func (m *MMPP) Next(sim.Time) sim.Duration {
	total := sim.Duration(0)
	for {
		rate := m.calmRate
		if m.burst {
			rate = m.burstRate
		}
		gap := sim.Duration(m.src.Exp(rate))
		if gap <= m.stateLeft {
			m.stateLeft -= gap
			return total + gap
		}
		// State switches before the arrival would have happened.
		total += m.stateLeft
		m.burst = !m.burst
		switchRate := m.toCalm
		if !m.burst {
			switchRate = m.toBurst
		}
		m.stateLeft = sim.Duration(m.src.Exp(switchRate))
	}
}

// Diurnal modulates a Poisson process with a sinusoidal day curve:
// rate(t) = base·(1 + amplitude·sin(2πt/period)), sampled by thinning.
type Diurnal struct {
	src       *rng.Source
	base      float64
	amplitude float64
	period    float64
}

var _ Arrivals = (*Diurnal)(nil)

// NewDiurnal returns a diurnal process. amplitude must be in [0, 1) so the
// rate stays positive; period is the cycle length in seconds.
func NewDiurnal(src *rng.Source, base, amplitude, period float64) *Diurnal {
	if base <= 0 || amplitude < 0 || amplitude >= 1 || period <= 0 {
		panic(fmt.Sprintf("workload: bad diurnal parameters base=%g amp=%g period=%g",
			base, amplitude, period))
	}
	return &Diurnal{src: src, base: base, amplitude: amplitude, period: period}
}

// Next implements Arrivals with Lewis–Shedler thinning against the peak
// rate.
func (d *Diurnal) Next(now sim.Time) sim.Duration {
	peak := d.base * (1 + d.amplitude)
	t := float64(now)
	for {
		t += d.src.Exp(peak)
		rate := d.base * (1 + d.amplitude*math.Sin(2*math.Pi*t/d.period))
		if d.src.Float64() < rate/peak {
			return sim.Duration(t - float64(now))
		}
	}
}

// Fixed replays constant gaps — useful in tests and closed-form checks.
type Fixed struct{ Gap sim.Duration }

var _ Arrivals = (*Fixed)(nil)

// Next implements Arrivals.
func (f *Fixed) Next(sim.Time) sim.Duration { return f.Gap }

// TaskTemplate describes a population of tasks derived from one
// application.
type TaskTemplate struct {
	App              string
	MeanCycles       float64      // offloadable demand per run
	CyclesSigma      float64      // lognormal dispersion of task sizes
	InputBytes       int64        // device→remote payload per run
	OutputBytes      int64        // remote→device payload per run
	MemoryBytes      int64        // peak working set of offloaded work
	ParallelFraction float64      // demand-weighted parallel share
	Deadline         sim.Duration // soft deadline; 0 = none
}

// Validate reports whether the template is usable.
func (t TaskTemplate) Validate() error {
	switch {
	case t.App == "":
		return fmt.Errorf("workload: template without app name")
	case t.MeanCycles <= 0:
		return fmt.Errorf("workload: %s: demand must be positive", t.App)
	case t.CyclesSigma < 0:
		return fmt.Errorf("workload: %s: negative dispersion", t.App)
	case t.InputBytes < 0 || t.OutputBytes < 0 || t.MemoryBytes < 0:
		return fmt.Errorf("workload: %s: negative sizes", t.App)
	case t.ParallelFraction < 0 || t.ParallelFraction > 1:
		return fmt.Errorf("workload: %s: parallel fraction outside [0,1]", t.App)
	case t.Deadline < 0:
		return fmt.Errorf("workload: %s: negative deadline", t.App)
	}
	return nil
}

// defaultDeadlines are the per-application soft deadlines: generous,
// minutes-to-hours budgets, as the non-time-critical framing demands.
var defaultDeadlines = map[string]sim.Duration{
	"video-transcode": 30 * 60,
	"ml-batch":        8 * 3600,
	"photo-pipeline":  10 * 60,
	"report-gen":      15 * 60,
	"sci-batch":       12 * 3600,
}

// FromGraph derives a task template from an application call graph: the
// offloadable demand is everything not pinned, the payloads are the edges
// crossing the pinned boundary, and the working set is the largest
// offloadable component's.
func FromGraph(g *callgraph.Graph) (TaskTemplate, error) {
	if err := g.Validate(); err != nil {
		return TaskTemplate{}, err
	}
	t := TaskTemplate{App: g.Name(), CyclesSigma: 0.25}
	var weighted float64
	for _, c := range g.Components() {
		if c.Pinned {
			continue
		}
		cycles := c.Cycles * c.CallsPerRun
		t.MeanCycles += cycles
		weighted += cycles * c.ParallelFraction
		if c.MemoryBytes > t.MemoryBytes {
			t.MemoryBytes = c.MemoryBytes
		}
	}
	if t.MeanCycles == 0 {
		return TaskTemplate{}, fmt.Errorf("workload: %s has no offloadable work", g.Name())
	}
	t.ParallelFraction = weighted / t.MeanCycles
	for _, e := range g.Edges() {
		fromPinned := g.Component(e.From).Pinned
		toPinned := g.Component(e.To).Pinned
		bytes := int64(float64(e.Bytes) * e.CallsPerRun)
		switch {
		case fromPinned && !toPinned:
			t.InputBytes += bytes
		case !fromPinned && toPinned:
			t.OutputBytes += bytes
		}
	}
	if d, ok := defaultDeadlines[g.Name()]; ok {
		t.Deadline = d
	} else {
		t.Deadline = 3600
	}
	return t, t.Validate()
}

// Generator draws tasks from a weighted mix of templates.
type Generator struct {
	src       *rng.Source
	templates []TaskTemplate
	cum       []float64 // cumulative weights
	baseID    model.TaskID
	nextID    model.TaskID // count of tasks drawn; IDs are baseID+1..baseID+nextID
}

// WeightedTemplate pairs a template with its share of the mix.
type WeightedTemplate struct {
	Template TaskTemplate
	Weight   float64
}

// NewGenerator returns a generator over the mix. Weights must be positive.
func NewGenerator(src *rng.Source, mix []WeightedTemplate) (*Generator, error) {
	if len(mix) == 0 {
		return nil, fmt.Errorf("workload: empty template mix")
	}
	g := &Generator{src: src}
	total := 0.0
	for _, wt := range mix {
		if err := wt.Template.Validate(); err != nil {
			return nil, err
		}
		if wt.Weight <= 0 {
			return nil, fmt.Errorf("workload: non-positive weight for %s", wt.Template.App)
		}
		total += wt.Weight
		g.templates = append(g.templates, wt.Template)
		g.cum = append(g.cum, total)
	}
	for i := range g.cum {
		g.cum[i] /= total
	}
	return g, nil
}

// StandardMix returns a generator over all five application templates with
// equal weights.
func StandardMix(src *rng.Source) (*Generator, error) {
	var mix []WeightedTemplate
	for _, name := range callgraph.TemplateNames() {
		t, err := FromGraph(callgraph.Templates()[name])
		if err != nil {
			return nil, err
		}
		mix = append(mix, WeightedTemplate{Template: t, Weight: 1})
	}
	return NewGenerator(src, mix)
}

// Clone returns a generator over the same template mix drawing from its
// own random stream, with task IDs offset by base. Sharded fleets give
// every UE its own clone: per-UE streams keep draws independent of the
// UE→shard partition, and a disjoint base per UE (e.g. UE index shifted
// past any per-UE task count) keeps IDs globally unique and
// shard-count-invariant. The templates and weights are shared read-only.
func (g *Generator) Clone(src *rng.Source, base model.TaskID) *Generator {
	return &Generator{src: src, templates: g.templates, cum: g.cum, baseID: base}
}

// Next draws one task submitted at now.
func (g *Generator) Next(now sim.Time) *model.Task {
	u := g.src.Float64()
	idx := 0
	for idx < len(g.cum)-1 && g.cum[idx] < u {
		idx++
	}
	t := g.templates[idx]
	g.nextID++
	scale := 1.0
	if t.CyclesSigma > 0 {
		// Unit-mean lognormal size factor.
		scale = g.src.LogNormal(-t.CyclesSigma*t.CyclesSigma/2, t.CyclesSigma)
	}
	return &model.Task{
		ID:               g.baseID + g.nextID,
		App:              t.App,
		InputBytes:       int64(float64(t.InputBytes) * scale),
		OutputBytes:      int64(float64(t.OutputBytes) * scale),
		Cycles:           t.MeanCycles * scale,
		MemoryBytes:      t.MemoryBytes,
		ParallelFraction: t.ParallelFraction,
		Deadline:         t.Deadline,
		Submitted:        now,
	}
}

// Generated returns how many tasks have been drawn.
func (g *Generator) Generated() uint64 { return uint64(g.nextID) }

// Stream schedules count arrivals on eng, drawing gaps from arrivals and
// tasks from gen, invoking submit for each. Submission happens inside the
// simulation, so substrates see realistic arrival dynamics.
func Stream(eng *sim.Engine, arrivals Arrivals, gen *Generator, count int, submit func(*model.Task)) {
	if count <= 0 {
		return
	}
	var arrive func()
	remaining := count
	arrive = func() {
		task := gen.Next(eng.Now())
		remaining--
		submit(task)
		if remaining > 0 {
			eng.After(arrivals.Next(eng.Now()), arrive)
		}
	}
	eng.After(arrivals.Next(eng.Now()), arrive)
}
