package workload

import (
	"math"
	"testing"
	"testing/quick"

	"offload/internal/callgraph"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/sim"
)

func TestPoissonMeanGap(t *testing.T) {
	p := NewPoisson(rng.New(1), 4) // 4/s → mean gap 0.25
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(p.Next(0))
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.005 {
		t.Fatalf("mean gap = %g, want ~0.25", mean)
	}
}

func TestPoissonValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate accepted")
		}
	}()
	NewPoisson(rng.New(1), 0)
}

func TestMMPPRateBetweenStates(t *testing.T) {
	// Calm 1/s, burst 50/s, equal sojourn rates → long-run mean rate ~25.5/s.
	m := NewMMPP(rng.New(2), 1, 50, 0.1, 0.1)
	count := 0
	elapsed := sim.Duration(0)
	for elapsed < 20000 {
		elapsed += m.Next(0)
		count++
	}
	rate := float64(count) / float64(elapsed)
	if rate < 10 || rate > 40 {
		t.Fatalf("MMPP long-run rate = %g, want between states (1, 50)", rate)
	}
	// It must actually exceed the calm rate substantially, proving bursts fire.
	if rate < 5 {
		t.Fatalf("MMPP never burst: rate %g", rate)
	}
}

func TestMMPPGapsPositive(t *testing.T) {
	m := NewMMPP(rng.New(3), 2, 20, 0.5, 0.5)
	for i := 0; i < 10000; i++ {
		if g := m.Next(0); g <= 0 {
			t.Fatalf("non-positive gap %v", g)
		}
	}
}

func TestDiurnalModulation(t *testing.T) {
	const period = 86400.0
	d := NewDiurnal(rng.New(4), 1, 0.9, period)
	// Count arrivals in the peak quarter vs the trough quarter of the day.
	countIn := func(start float64) int {
		n := 0
		now := sim.Time(start)
		end := sim.Time(start + period/8)
		for now < end {
			now = now.Add(d.Next(now))
			n++
		}
		return n
	}
	peak := countIn(period / 4 * 0.9) // around sin peak at period/4
	trough := countIn(period * 3 / 4 * 0.95)
	if peak <= trough {
		t.Fatalf("diurnal peak (%d) not above trough (%d)", peak, trough)
	}
}

func TestFixedArrivals(t *testing.T) {
	f := &Fixed{Gap: 2.5}
	for i := 0; i < 5; i++ {
		if f.Next(0) != 2.5 {
			t.Fatal("Fixed gap changed")
		}
	}
}

func TestFromGraphDerivesOffloadableDemand(t *testing.T) {
	g := callgraph.SciBatch()
	tmpl, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// Everything except the pinned instrument: clean+simulate+analyze+visualize.
	want := 2e9 + 2e11 + 1e10 + 2e9
	if math.Abs(tmpl.MeanCycles-want)/want > 1e-12 {
		t.Fatalf("MeanCycles = %g, want %g", tmpl.MeanCycles, want)
	}
	// Input: instrument→clean (32 MB); output: visualize→instrument (2 MB).
	if tmpl.InputBytes != 32*model.MB {
		t.Fatalf("InputBytes = %d", tmpl.InputBytes)
	}
	if tmpl.OutputBytes != 2*model.MB {
		t.Fatalf("OutputBytes = %d", tmpl.OutputBytes)
	}
	if tmpl.MemoryBytes != 3072*model.MB {
		t.Fatalf("MemoryBytes = %d", tmpl.MemoryBytes)
	}
	if tmpl.Deadline != 12*3600 {
		t.Fatalf("Deadline = %v", tmpl.Deadline)
	}
	if tmpl.ParallelFraction <= 0.8 || tmpl.ParallelFraction >= 1 {
		t.Fatalf("ParallelFraction = %g, want demand-weighted ~0.93", tmpl.ParallelFraction)
	}
}

func TestFromGraphAllTemplates(t *testing.T) {
	for name, g := range callgraph.Templates() {
		tmpl, err := FromGraph(g)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if tmpl.Deadline < 600 {
			t.Errorf("%s: deadline %v below the non-time-critical range", name, tmpl.Deadline)
		}
	}
}

func TestFromGraphRejectsAllPinned(t *testing.T) {
	g := callgraph.New("pinned-only")
	g.MustAddComponent(callgraph.Component{Name: "ui", Cycles: 1, Pinned: true})
	if _, err := FromGraph(g); err == nil {
		t.Fatal("all-pinned graph accepted")
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	a := TaskTemplate{App: "a", MeanCycles: 1e9, Deadline: 60}
	b := TaskTemplate{App: "b", MeanCycles: 1e9, Deadline: 60}
	gen, err := NewGenerator(rng.New(5), []WeightedTemplate{
		{Template: a, Weight: 3},
		{Template: b, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[gen.Next(0).App]++
	}
	frac := float64(counts["a"]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("template a fraction = %g, want ~0.75", frac)
	}
	if gen.Generated() != n {
		t.Fatalf("Generated = %d", gen.Generated())
	}
}

// TestGeneratorClone: a clone shares the mix but draws from its own
// stream with IDs offset by its base — same-seeded clones with different
// bases produce identical tasks except for the disjoint ID ranges.
func TestGeneratorClone(t *testing.T) {
	gen, err := StandardMix(rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	const base = model.TaskID(1) << 32
	c1 := gen.Clone(rng.New(99), 0)
	c2 := gen.Clone(rng.New(99), base)
	for i := 0; i < 50; i++ {
		a, b := c1.Next(0), c2.Next(0)
		if b.ID != a.ID+base {
			t.Fatalf("draw %d: IDs %d and %d not offset by base", i, a.ID, b.ID)
		}
		if a.App != b.App || a.Cycles != b.Cycles || a.InputBytes != b.InputBytes {
			t.Fatalf("draw %d: same-seeded clones diverged: %+v vs %+v", i, a, b)
		}
	}
	if c1.Generated() != 50 || c2.Generated() != 50 {
		t.Fatalf("Generated = %d/%d, want 50/50", c1.Generated(), c2.Generated())
	}
	// The parent's stream must be untouched by clone draws.
	if gen.Generated() != 0 {
		t.Fatalf("parent Generated = %d after clone draws, want 0", gen.Generated())
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(rng.New(1), nil); err == nil {
		t.Fatal("empty mix accepted")
	}
	bad := TaskTemplate{App: "x"} // zero cycles
	if _, err := NewGenerator(rng.New(1), []WeightedTemplate{{Template: bad, Weight: 1}}); err == nil {
		t.Fatal("invalid template accepted")
	}
	ok := TaskTemplate{App: "x", MeanCycles: 1}
	if _, err := NewGenerator(rng.New(1), []WeightedTemplate{{Template: ok, Weight: 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestGeneratedTasksValid(t *testing.T) {
	gen, err := StandardMix(rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	f := func(step uint8) bool {
		task := gen.Next(sim.Time(step))
		if err := task.Validate(); err != nil {
			return false
		}
		return task.Cycles > 0 && task.ID > 0 && task.Deadline > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskSizeVariationIsUnbiased(t *testing.T) {
	tmpl := TaskTemplate{App: "x", MeanCycles: 1e9, CyclesSigma: 0.5}
	gen, err := NewGenerator(rng.New(7), []WeightedTemplate{{Template: tmpl, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += gen.Next(0).Cycles
	}
	mean := sum / n
	if math.Abs(mean-1e9)/1e9 > 0.02 {
		t.Fatalf("mean task size = %g, want ~1e9 (unbiased)", mean)
	}
}

func TestTaskIDsUnique(t *testing.T) {
	gen, err := StandardMix(rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[model.TaskID]bool{}
	for i := 0; i < 1000; i++ {
		id := gen.Next(0).ID
		if seen[id] {
			t.Fatalf("duplicate task ID %d", id)
		}
		seen[id] = true
	}
}

func TestStreamSubmitsExactlyCountTasks(t *testing.T) {
	eng := sim.NewEngine()
	gen, err := StandardMix(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var submitted []*model.Task
	Stream(eng, &Fixed{Gap: 1}, gen, 10, func(task *model.Task) {
		submitted = append(submitted, task)
	})
	eng.Run()
	if len(submitted) != 10 {
		t.Fatalf("submitted %d tasks, want 10", len(submitted))
	}
	for i, task := range submitted {
		if task.Submitted != sim.Time(i+1) {
			t.Fatalf("task %d submitted at %v, want %d", i, task.Submitted, i+1)
		}
	}
}

func TestStreamZeroCountIsNoop(t *testing.T) {
	eng := sim.NewEngine()
	gen, _ := StandardMix(rng.New(10))
	Stream(eng, &Fixed{Gap: 1}, gen, 0, func(*model.Task) { t.Fatal("submitted") })
	eng.Run()
}
