// Package offload is a framework for computational offloading of
// non-time-critical applications, after Patsch, "Computational Offloading
// for Non-Time-Critical Applications" (ICDCS 2022).
//
// The premise: when a workload tolerates seconds-to-hours of completion
// time, the latency advantage of edge computing stops paying for its
// infrastructure, and the right offloading target is cloud serverless —
// provided the framework (1) determines each component's computational
// demand, (2) partitions the application into device-side and offloadable
// parts, (3) allocates serverless resources cost-optimally, and (4) wires
// all of that into the CI/CD pipeline. This package exposes those four
// capabilities plus the simulation substrates used to evaluate them.
//
// # Quick start
//
//	sys, err := offload.NewSystem(offload.DefaultConfig())
//	gen, err := offload.StandardMix(sys.Src.Split())
//	sys.SubmitStream(offload.NewPoisson(sys.Src.Split(), 0.5), gen, 1000)
//	sys.Run()
//	fmt.Println(sys.Stats().CostPerTask())
//
// # Offline planning
//
//	plan, err := offload.PlanApp(offload.SciBatch(), offload.PlanOptions{
//		Device:     offload.Smartphone(),
//		Serverless: offload.LambdaLike(),
//		CloudPath:  offload.WiFiCloud(),
//	})
//
// The deeper building blocks live in internal/: the discrete-event kernel
// (internal/sim), the substrates (device, network, edge, serverless,
// cloudvm), the algorithms (profile, partition, alloc, sched) and the
// pipeline integration (cicd).
package offload

import (
	"offload/internal/adapt"
	"offload/internal/callgraph"
	"offload/internal/chain"
	"offload/internal/cicd"
	"offload/internal/cloudvm"
	"offload/internal/core"
	"offload/internal/dag"
	"offload/internal/device"
	"offload/internal/edge"
	"offload/internal/fault"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/rng"
	"offload/internal/sched"
	"offload/internal/serverless"
	"offload/internal/sim"
	"offload/internal/workload"
)

// Core user journey.
type (
	// Config assembles a complete offloading environment.
	Config = core.Config
	// System is a live assembled environment.
	System = core.System
	// BatchConfig enables delay-tolerant batching of serverless tasks.
	BatchConfig = core.BatchConfig
	// PolicyName selects a placement policy.
	PolicyName = core.PolicyName
	// Plan is the offline artefact for one application.
	Plan = core.Plan
	// PlanOptions configures the offline planning journey.
	PlanOptions = core.PlanOptions
	// Weights converts seconds, joules and dollars into one objective.
	Weights = core.Weights
)

// Placement policies.
const (
	PolicyLocalOnly     = core.PolicyLocalOnly
	PolicyEdgeAll       = core.PolicyEdgeAll
	PolicyCloudAll      = core.PolicyCloudAll
	PolicyVMAll         = core.PolicyVMAll
	PolicyRandom        = core.PolicyRandom
	PolicyThreshold     = core.PolicyThreshold
	PolicyDeadlineAware = core.PolicyDeadlineAware
	PolicyBanditUCB     = core.PolicyBanditUCB
	PolicyBanditGreedy  = core.PolicyBanditGreedy
)

// Online adaptive layer (internal/adapt): bandit placement, runtime
// memory tuning, drift detection and admission control.
type (
	// AdaptConfig tunes the adaptive layer; set Config.Adapt to enable it
	// for non-bandit policies (the bandit policies enable it implicitly).
	AdaptConfig = adapt.Config
	// AdaptDriftConfig tunes the per-backend Page–Hinkley drift detector.
	AdaptDriftConfig = adapt.DriftConfig
	// AdaptAdmissionConfig tunes the admission controller.
	AdaptAdmissionConfig = adapt.AdmissionConfig
)

// DefaultAdaptConfig enables every adaptive feature with the package
// defaults.
func DefaultAdaptConfig() AdaptConfig { return adapt.DefaultConfig() }

// Regional failover layer (internal/fault + internal/sched): region
// naming, scheduled regional disasters, health tracking with re-homing
// and the graceful-degradation ladder. Set Config.Regions to use it.
type (
	// RegionsConfig names each substrate's region, prices the
	// inter-region backbone, schedules regional disasters and enables
	// the failover layer.
	RegionsConfig = core.RegionsConfig
	// RegionSchedule scripts one region's outages and brown-outs.
	RegionSchedule = fault.RegionSchedule
	// FaultWindow is one [Start, Start+Duration) fault window.
	FaultWindow = fault.Window
	// FaultBrownout caps capacity to a fraction inside a window.
	FaultBrownout = fault.Brownout
	// InterRegionLink prices the backbone a re-homed task's state
	// crosses.
	InterRegionLink = model.InterRegionLink
	// Failover configures the scheduler's regional failover layer.
	Failover = sched.Failover
	// Ladder is the graceful-degradation state machine.
	Ladder = sched.Ladder
	// FailoverStats counts what the failover layer did to tasks.
	FailoverStats = sched.FailoverStats
	// RegionSnapshot is one region's health ledger at a point in time.
	RegionSnapshot = sched.RegionSnapshot
)

// NewSystem builds a System from the configuration.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// Report is the run summary every consumer reads from the same place: the
// examples, the CI/CD SLO gate and the offbench tables see the same
// numbers.
type Report = core.Report

// Observer samples a live System at a fixed simulated-time interval.
type Observer = core.Observer

// Fleet simulates many devices against shared remote infrastructure.
type Fleet = core.Fleet

// FleetStats aggregates statistics across a fleet's schedulers.
type FleetStats = core.FleetStats

// NewFleet builds n devices from cfg's device template, sharing the
// configured serverless region, edge site and VM fleet.
func NewFleet(cfg Config, n int) (*Fleet, error) { return core.NewFleet(cfg, n) }

// ShardedFleet is Fleet at million-UE scale: UEs partitioned across
// Config.ShardCount worker shards in lockstep epochs against a
// conservative barrier at the hub-owned shared substrates, with results
// byte-identical at every shard count.
type ShardedFleet = core.ShardedFleet

// NewShardedFleet builds n devices partitioned across cfg.ShardCount
// shards (0 and 1 both mean one shard, the serial reference).
func NewShardedFleet(cfg Config, n int) (*ShardedFleet, error) {
	return core.NewShardedFleet(cfg, n)
}

// DefaultConfig is a smartphone with every substrate present and the
// deadline-aware policy.
func DefaultConfig() Config { return core.DefaultConfig() }

// AllPolicies lists the policy names in canonical order.
func AllPolicies() []PolicyName { return core.AllPolicies() }

// PlanApp runs the offline journey: profile → partition → allocate →
// manifest.
func PlanApp(g *Graph, opts PlanOptions) (*Plan, error) { return core.PlanApp(g, opts) }

// DefaultWeights balances latency, energy and money for a battery-powered
// consumer device.
func DefaultWeights() Weights { return core.DefaultWeights() }

// Domain types.
type (
	// Task is one unit of offloadable work.
	Task = model.Task
	// TaskID identifies a task within a run.
	TaskID = model.TaskID
	// Outcome is the end-to-end record for a completed task.
	Outcome = model.Outcome
	// Placement says where a task's computation ran.
	Placement = model.Placement
)

// Placements.
const (
	PlaceLocal    = model.PlaceLocal
	PlaceEdge     = model.PlaceEdge
	PlaceFunction = model.PlaceFunction
	PlaceVM       = model.PlaceVM
)

// Application graphs.
type (
	// Graph is a weighted application component graph.
	Graph = callgraph.Graph
	// Component is one vertex of an application graph.
	Component = callgraph.Component
	// GraphEdge is one interaction between components.
	GraphEdge = callgraph.Edge
)

// NewGraph returns an empty application graph.
func NewGraph(name string) *Graph { return callgraph.New(name) }

// ParseGraph decodes a graph from the JSON spec format.
func ParseGraph(data []byte) (*Graph, error) { return callgraph.Parse(data) }

// Application templates.
var (
	// VideoTranscode is a background video-transcoding job.
	VideoTranscode = callgraph.VideoTranscode
	// MLBatch is nightly batch inference.
	MLBatch = callgraph.MLBatch
	// PhotoPipeline is a photo backup/enhancement pipeline.
	PhotoPipeline = callgraph.PhotoPipeline
	// ReportGen is business-report generation.
	ReportGen = callgraph.ReportGen
	// SciBatch is an overnight scientific batch job.
	SciBatch = callgraph.SciBatch
	// Templates returns all application templates keyed by name.
	Templates = callgraph.Templates
)

// DAG application offloading (internal/dag + internal/workload): jobs
// whose tasks carry precedence edges with data-transfer payloads,
// released through the scheduler as their predecessors complete. Set
// Config.DAG and submit with System.SubmitJob / System.SubmitJobStream.
type (
	// DAGConfig enables precedence-aware job submission on a System.
	DAGConfig = core.DAGConfig
	// DAGPlacement picks how a job's nodes are placed.
	DAGPlacement = core.DAGPlacement
	// Job is a validated directed acyclic graph of tasks.
	Job = dag.Job
	// JobNode is one task-to-be within a job.
	JobNode = dag.Node
	// JobEdge is one precedence constraint and its data payload.
	JobEdge = dag.Edge
	// JobResult is the per-job record: makespan, critical path, slack.
	JobResult = dag.Result
	// JobStats aggregates job results across a run.
	JobStats = dag.Stats
	// JobTemplate describes a population of generated DAG jobs.
	JobTemplate = workload.JobTemplate
	// JobGenerator draws deterministic random jobs from a template.
	JobGenerator = workload.JobGenerator
	// JobShape names a generated DAG family.
	JobShape = workload.JobShape
)

// The DAG placement modes and generator shape families.
const (
	DAGOblivious  = core.DAGOblivious
	DAGRank       = core.DAGRank
	ShapePipeline = workload.ShapePipeline
	ShapeForkJoin = workload.ShapeForkJoin
	ShapeLayered  = workload.ShapeLayered
)

// NewJob returns an empty DAG job with the given deadline in simulated
// seconds (0 = none).
func NewJob(app string, deadline float64) *Job { return dag.New(app, sim.Duration(deadline)) }

// NewJobGenerator returns a deterministic random-DAG generator over the
// template's shape family.
func NewJobGenerator(src *rng.Source, t JobTemplate) (*JobGenerator, error) {
	return workload.NewJobGenerator(src, t)
}

// JobFromGraph converts an application call graph into a DAG job,
// deriving per-node demand the same way TemplateFromGraph does.
func JobFromGraph(g *Graph) (*Job, error) { return workload.JobFromGraph(g) }

// Workload generation.
type (
	// Generator draws tasks from a weighted template mix.
	Generator = workload.Generator
	// Arrivals produces inter-arrival gaps.
	Arrivals = workload.Arrivals
	// TaskTemplate describes a population of tasks.
	TaskTemplate = workload.TaskTemplate
	// WeightedTemplate pairs a template with its share of a mix.
	WeightedTemplate = workload.WeightedTemplate
)

// StandardMix returns a generator over all five application templates.
func StandardMix(src *rng.Source) (*Generator, error) { return workload.StandardMix(src) }

// NewMix returns a generator over a weighted template mix.
func NewMix(src *rng.Source, mix []WeightedTemplate) (*Generator, error) {
	return workload.NewGenerator(src, mix)
}

// NewGenerator returns a generator over a single template.
func NewGenerator(src *rng.Source, t TaskTemplate) (*Generator, error) {
	return workload.NewGenerator(src, []WeightedTemplate{{Template: t, Weight: 1}})
}

// NewPoisson returns a Poisson arrival process with the given rate/s.
func NewPoisson(src *rng.Source, rate float64) Arrivals { return workload.NewPoisson(src, rate) }

// TemplateFromGraph derives a task template from an application graph.
func TemplateFromGraph(g *Graph) (TaskTemplate, error) { return workload.FromGraph(g) }

// NewRand returns a deterministic random source for the given seed.
func NewRand(seed uint64) *rng.Source { return rng.New(seed) }

// CI/CD integration.
type (
	// DeployOptions configures one CI/CD pipeline run.
	DeployOptions = core.DeployOptions
	// DeployResult is the outcome of one pipeline run.
	DeployResult = core.DeployResult
	// PipelineReport is a stage-by-stage pipeline report.
	PipelineReport = cicd.Report
	// Manifest records what a pipeline run deployed.
	Manifest = cicd.Manifest
)

// RunDeployPipeline runs the (optionally offload-integrated) deployment
// pipeline for an application on a fresh simulated serverless platform.
func RunDeployPipeline(g *Graph, opts DeployOptions) (DeployResult, error) {
	return core.RunDeployPipeline(g, opts)
}

// RunResult is one chain-executed application run: per-component timings,
// cut-edge transfers, money and device energy.
type RunResult = chain.Result

// SimulatePlan plans an application, deploys the manifest onto a fresh
// simulated platform, and executes runs application runs through the
// partitioned chain.
func SimulatePlan(g *Graph, opts PlanOptions, runs int) (*Plan, []RunResult, error) {
	return core.SimulatePlan(g, opts, runs)
}

// Substrate presets.
var (
	// Smartphone is a mid-range handset device configuration.
	Smartphone = device.Smartphone
	// IoTSensor is a constrained sensor-node device configuration.
	IoTSensor = device.IoTSensor
	// Laptop is a mains-powered developer laptop configuration.
	Laptop = device.Laptop
	// LambdaLike is an AWS-Lambda-calibrated serverless platform.
	LambdaLike = serverless.LambdaLike
	// EdgeSmallSite is an on-premises micro-datacenter.
	EdgeSmallSite = edge.SmallSite
	// VMC5Large is a fixed general-purpose cloud instance.
	VMC5Large = cloudvm.C5Large
	// VMAutoscaled is an elastic cloud-VM fleet.
	VMAutoscaled = cloudvm.Autoscaled
	// WiFiCloud is a WiFi-to-cloud-region network path.
	WiFiCloud = network.WiFiCloud
	// LTECloud is a cellular-to-cloud network path.
	LTECloud = network.LTECloud
	// LANEdge is a LAN path to an on-premises edge server.
	LANEdge = network.LANEdge
	// FiveGEdge is a 5G path to a MEC site.
	FiveGEdge = network.FiveGEdge
)
