package offload_test

import (
	"testing"

	"offload"
)

// These tests exercise the public façade exactly as a downstream user
// would, keeping the README snippets honest.

func TestQuickstartJourney(t *testing.T) {
	sys, err := offload.NewSystem(offload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := offload.StandardMix(sys.Src.Split())
	if err != nil {
		t.Fatal(err)
	}
	sys.SubmitStream(offload.NewPoisson(sys.Src.Split(), 0.5), gen, 25)
	sys.Run()
	if sys.Stats().Total() != 25 {
		t.Fatalf("Total = %d", sys.Stats().Total())
	}
}

func TestPlanJourney(t *testing.T) {
	plan, err := offload.PlanApp(offload.SciBatch(), offload.PlanOptions{
		Device:     offload.Smartphone(),
		Serverless: offload.LambdaLike(),
		CloudPath:  offload.WiFiCloud(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Remote) == 0 || len(plan.Manifest.Functions) == 0 {
		t.Fatalf("empty plan: %+v", plan)
	}
}

func TestCustomGraphThroughFacade(t *testing.T) {
	g := offload.NewGraph("my-app")
	g.MustAddComponent(offload.Component{Name: "ui", Cycles: 1e7, Pinned: true})
	g.MustAddComponent(offload.Component{Name: "crunch", Cycles: 5e10, ParallelFraction: 0.8})
	if err := g.Connect("ui", "crunch", 1<<20, 1); err != nil {
		t.Fatal(err)
	}
	plan, err := offload.PlanApp(g, offload.PlanOptions{
		Device:     offload.Laptop(),
		Serverless: offload.LambdaLike(),
		CloudPath:  offload.WiFiCloud(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Remote) != 1 || plan.Remote[0] != "crunch" {
		t.Fatalf("Remote = %v, want [crunch]", plan.Remote)
	}
}

func TestAllPoliciesRunViaFacade(t *testing.T) {
	for _, p := range offload.AllPolicies() {
		cfg := offload.DefaultConfig()
		cfg.Policy = p
		sys, err := offload.NewSystem(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		gen, err := offload.StandardMix(sys.Src.Split())
		if err != nil {
			t.Fatal(err)
		}
		sys.SubmitStream(offload.NewPoisson(sys.Src.Split(), 1), gen, 5)
		sys.Run()
		if sys.Stats().Total() != 5 {
			t.Fatalf("%s completed %d/5", p, sys.Stats().Total())
		}
	}
}

func TestRegionalFailoverJourney(t *testing.T) {
	cfg := offload.DefaultConfig()
	cfg.Policy = offload.PolicyCloudAll
	cfg.Retries = 3
	cfg.RetryBackoff = 1
	cfg.Regions = &offload.RegionsConfig{
		Edge: "metro", Serverless: "cloud-east", VM: "cloud-west",
		Schedules: []offload.RegionSchedule{{
			Region:       "cloud-east",
			Outages:      []offload.FaultWindow{{Start: 5, Duration: 60}},
			RecoveryRamp: 5,
		}},
		Failover: &offload.Failover{Ladder: &offload.Ladder{}},
	}
	sys, err := offload.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := offload.StandardMix(sys.Src.Split())
	if err != nil {
		t.Fatal(err)
	}
	sys.SubmitStream(offload.NewPoisson(sys.Src.Split(), 1), gen, 40)
	sys.Run()
	if got := sys.Stats().Total(); got != 40 {
		t.Fatalf("Total = %d, want 40", got)
	}
	if failed := sys.Stats().Failed; failed != 0 {
		t.Fatalf("failover lost %d tasks", failed)
	}
	fo := sys.Scheduler.FailoverStats()
	if fo.Lost != 0 {
		t.Fatalf("wait queue lost %d tasks", fo.Lost)
	}
	if fo.ReHomed+fo.Localized+fo.Queued+fo.Shed == 0 {
		t.Fatal("failover layer never touched a task")
	}
	if _, total := sys.Scheduler.HealthyRegions(); total != 3 {
		t.Fatalf("tracking %d regions, want 3", total)
	}
	east := false
	for _, rs := range sys.Scheduler.RegionSnapshots() {
		if rs.Name == "cloud-east" && rs.Downs >= 1 {
			east = true
		}
	}
	if !east {
		t.Fatal("cloud-east outage never detected")
	}
}

func TestDAGJourney(t *testing.T) {
	cfg := offload.DefaultConfig()
	cfg.DAG = &offload.DAGConfig{Placement: offload.DAGRank}
	sys, err := offload.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := offload.NewJobGenerator(sys.Src.Split(), offload.JobTemplate{
		App: "render", Shape: offload.ShapeForkJoin, Nodes: 6,
		MeanCycles: 2e9, CyclesSigma: 0.2, EdgeBytes: 2 << 20, Deadline: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitJobStream(offload.NewPoisson(sys.Src.Split(), 0.05), gen, 5); err != nil {
		t.Fatal(err)
	}
	converted, err := offload.JobFromGraph(offload.VideoTranscode())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitJob(converted); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if err := sys.JobErr(); err != nil {
		t.Fatal(err)
	}
	js := sys.JobStats()
	if js.Jobs != 6 {
		t.Fatalf("Jobs = %d, want 6", js.Jobs)
	}
	if js.Failed != 0 {
		t.Fatalf("%d jobs failed", js.Failed)
	}
	if js.MeanMakespanS() <= 0 || js.MeanCritPathS() <= 0 {
		t.Fatalf("degenerate books: makespan %g, crit %g",
			js.MeanMakespanS(), js.MeanCritPathS())
	}
	if drift := js.MaxDriftS(); drift > 1e-9 {
		t.Fatalf("critical path does not partition makespan: drift %g s", drift)
	}
}
